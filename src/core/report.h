// The aggregated findings report — everything §3 of the paper derives from
// the trace, in one struct, with a renderer that prints the Table 4-style
// summary of findings and implications.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/activity_model.h"
#include "analysis/burstiness.h"
#include "analysis/engagement.h"
#include "analysis/file_size_model.h"
#include "analysis/interval_model.h"
#include "analysis/session_stats.h"
#include "analysis/usage_patterns.h"
#include "analysis/workload_timeseries.h"

namespace mcloud::core {

/// Raw empirical samples behind the fitted summaries. Empty by default;
/// populated (identically by both engines) when
/// PipelineOptions::keep_raw_samples is set. The paper-fidelity validation
/// layer (src/validate/) runs its KS/AD gates on these instead of the
/// fitted parameters, so a fit that silently absorbs a generator regression
/// still trips the gate.
struct RawSamples {
  /// Mobile inter-file-operation gaps (seconds), trace order (Fig 3 input).
  std::vector<double> intervals_s;
  /// Per-session average file size (MB) of mobile store-only / retrieve-only
  /// sessions (the Table 2 fit inputs).
  std::vector<double> store_avg_mb;
  std::vector<double> retrieve_avg_mb;
  /// File-operation count of every mobile session (Fig 5a input).
  std::vector<double> session_op_counts;
  /// log10 store/retrieve volume ratio per user, by device profile
  /// (Fig 7a input; zero-traffic users skipped).
  std::vector<double> mobile_only_ratio_log10;
  std::vector<double> mobile_pc_ratio_log10;
};

struct FullReport {
  // Dataset overview (§2.2).
  std::size_t records = 0;
  std::size_t mobile_users = 0;
  std::size_t mobile_devices = 0;
  double android_access_share = 0;

  // Workload (§2.4).
  analysis::WorkloadTimeseries timeseries;

  // Sessions (§3.1).
  analysis::IntervalModel interval_model{
      Histogram(0.0, 6.0, 60), {}, 0, 0, 0, 0};
  analysis::SessionTypeSplit session_split;
  std::vector<analysis::BurstinessGroup> burstiness;
  analysis::FileSizeModel store_size_model;
  analysis::FileSizeModel retrieve_size_model;

  // Usage patterns (§3.2).
  analysis::UserTypeColumn mobile_only_column;
  analysis::UserTypeColumn mobile_pc_column;
  analysis::UserTypeColumn pc_only_column;
  std::vector<analysis::EngagementCurve> engagement;
  std::vector<analysis::RetrievalReturnCurve> retrieval_returns;
  analysis::ActivityModelResult store_activity;
  analysis::ActivityModelResult retrieve_activity;

  /// Raw validation inputs (empty unless keep_raw_samples was requested).
  RawSamples raw;
};

/// Render the Table 4-style findings summary (paper value vs measured).
[[nodiscard]] std::string RenderFindings(const FullReport& report);

/// Order-sensitive FNV-1a hash over every field of the report (doubles by
/// bit pattern). Two reports fingerprint equal iff they are bit-identical —
/// the equivalence oracle for the columnar vs AoS engines and for thread
/// sweeps.
[[nodiscard]] std::uint64_t FingerprintReport(const FullReport& report);

}  // namespace mcloud::core
