#include "core/deferral.h"

#include <algorithm>
#include <unordered_set>

#include "util/error.h"
#include "util/rng.h"

namespace mcloud::core {

DeferralResult SimulateDeferral(std::span<const LogRecord> trace,
                                const DeferralPolicy& policy,
                                UnixSeconds trace_start, int days,
                                std::uint64_t seed) {
  MCLOUD_REQUIRE(policy.peak_begin_hour >= 0 && policy.peak_end_hour <= 24 &&
                     policy.peak_begin_hour < policy.peak_end_hour,
                 "bad peak window");
  MCLOUD_REQUIRE(policy.defer_begin_hour >= 0 &&
                     policy.defer_end_hour <= 24 &&
                     policy.defer_begin_hour < policy.defer_end_hour,
                 "bad deferral window");
  MCLOUD_REQUIRE(policy.opt_in >= 0 && policy.opt_in <= 1,
                 "opt-in must be a probability");

  // Users who retrieve anything during the window are excluded when the
  // policy protects same-week readers.
  std::unordered_set<std::uint64_t> retrievers;
  if (policy.only_non_retrievers) {
    for (const LogRecord& r : trace) {
      if (r.direction == Direction::kRetrieve) retrievers.insert(r.user_id);
    }
  }

  Rng rng(seed);
  // Per-user opt-in decision must be stable across their records.
  std::unordered_map<std::uint64_t, bool> opted;

  std::vector<LogRecord> shifted;
  shifted.reserve(trace.size());
  DeferralResult result;
  double store_volume = 0;
  double deferred_volume = 0;

  for (const LogRecord& r : trace) {
    LogRecord copy = r;
    const bool is_store_chunk =
        r.direction == Direction::kStore &&
        r.request_type == RequestType::kChunkRequest;
    if (is_store_chunk) store_volume += static_cast<double>(r.data_volume);

    const int hour_of_day = HourOfDay(r.timestamp, trace_start);
    const bool in_peak = hour_of_day >= policy.peak_begin_hour &&
                         hour_of_day < policy.peak_end_hour;
    const bool store_req = r.direction == Direction::kStore;

    if (store_req && in_peak &&
        (!policy.only_non_retrievers || !retrievers.contains(r.user_id))) {
      auto [it, inserted] = opted.try_emplace(r.user_id, false);
      if (inserted) it->second = rng.Bernoulli(policy.opt_in);
      if (it->second) {
        // Move to a uniform slot in the next morning's deferral window.
        const int day = DayIndex(r.timestamp, trace_start);
        const UnixSeconds next_morning =
            trace_start +
            static_cast<UnixSeconds>(day + 1) *
                static_cast<UnixSeconds>(kDay) +
            static_cast<UnixSeconds>(policy.defer_begin_hour) *
                static_cast<UnixSeconds>(kHour);
        const auto window = static_cast<UnixSeconds>(
            (policy.defer_end_hour - policy.defer_begin_hour) * kHour);
        copy.timestamp =
            next_morning + static_cast<UnixSeconds>(rng.UniformInt(
                               static_cast<std::uint64_t>(window)));
        if (is_store_chunk) {
          ++result.deferred_chunks;
          deferred_volume += static_cast<double>(r.data_volume);
        }
      }
    }
    shifted.push_back(copy);
  }
  std::sort(shifted.begin(), shifted.end(), LogRecordTimeOrder);

  // Deferrals past the trace end spill into an extra day of bins.
  result.before = analysis::BuildTimeseries(trace, trace_start, days + 1);
  result.after = analysis::BuildTimeseries(shifted, trace_start, days + 1);

  for (const auto& h : result.before.hours)
    result.peak_before_gb = std::max(result.peak_before_gb,
                                     h.StoreVolumeGb());
  for (const auto& h : result.after.hours)
    result.peak_after_gb = std::max(result.peak_after_gb, h.StoreVolumeGb());
  result.peak_reduction =
      result.peak_before_gb > 0
          ? 1.0 - result.peak_after_gb / result.peak_before_gb
          : 0.0;
  result.deferred_share =
      store_volume > 0 ? deferred_volume / store_volume : 0.0;
  return result;
}

}  // namespace mcloud::core
