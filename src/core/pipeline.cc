#include "core/pipeline.h"

#include <functional>
#include <unordered_set>

#include "analysis/sessionizer.h"
#include "trace/filters.h"
#include "util/error.h"
#include "util/parallel.h"

namespace mcloud::core {

AnalysisPipeline::AnalysisPipeline(const PipelineOptions& options)
    : options_(options) {
  MCLOUD_REQUIRE(options.days >= 1, "need at least one day");
}

// The §3 analyses form a small dependency DAG: everything below reads the
// trace (or its mobile slice) and writes disjoint FullReport fields, so the
// independent stages of each phase run concurrently on the pool. Only two
// order edges exist: τ (phase 1, interval model) gates both sessionizations,
// and the engagement curves (phase 3) additionally need the usage columns'
// input (phase 1). Every stage is a pure function of read-only inputs, so
// the report is identical for every thread count.
FullReport AnalysisPipeline::Run(std::span<const LogRecord> trace) const {
  MCLOUD_REQUIRE(!trace.empty(), "empty trace");
  ThreadPool pool(options_.threads);
  FullReport report;

  // Mobile slice as an index view: 4 bytes per record instead of a full
  // LogRecord copy — the §3.1 stages only ever stream over it.
  const TraceView mobile = MobileOnlyView(trace);

  // Cross-phase intermediates.
  Seconds tau = 0;
  std::vector<analysis::Session> mobile_sessions;
  std::vector<analysis::UserUsage> usage;

  // --- Phase 1: stages that depend only on the trace / mobile slice.
  ParallelInvoke(
      pool,
      {
          [&] {
            // Dataset overview (§2.2; mobile figures count mobile records
            // only) and the Fig 1 workload pattern (§2.4), in one pass each.
            report.records = trace.size();
            std::unordered_set<std::uint64_t> users;
            std::unordered_set<std::uint64_t> devices;
            std::size_t android = 0;
            for (const LogRecord& r : mobile) {
              users.insert(r.user_id);
              devices.insert(r.device_id);
              if (r.device_type == DeviceType::kAndroid) ++android;
            }
            report.mobile_users = users.size();
            report.mobile_devices = devices.size();
            report.android_access_share =
                mobile.empty() ? 0
                               : static_cast<double>(android) /
                                     static_cast<double>(mobile.size());
            report.timeseries = analysis::BuildTimeseriesFrom(
                mobile, options_.trace_start, options_.days);
          },
          [&] {
            // Interval model (§3.1.1) and the τ every sessionization uses.
            const std::vector<double> intervals =
                analysis::InterOpIntervalsFrom(mobile);
            report.interval_model = analysis::FitIntervalModel(intervals);
            tau = options_.session_tau > 0 ? options_.session_tau
                                           : report.interval_model.valley_tau;
          },
          [&] {
            // Usage patterns (§3.2) need the full mobile+PC view.
            usage = analysis::BuildUserUsage(trace);
          },
          [&] {
            // Activity models (§3.2.3) over mobile users' operations.
            const std::vector<analysis::UserUsage> mobile_usage =
                analysis::BuildUserUsageFrom(mobile);
            report.store_activity =
                analysis::FitActivity(mobile_usage, Direction::kStore);
            report.retrieve_activity =
                analysis::FitActivity(mobile_usage, Direction::kRetrieve);
          },
      });

  // --- Phase 2: session identification (needs τ) and its dependents.
  const analysis::Sessionizer sessionizer(tau);
  std::vector<analysis::Session> all_sessions;
  ParallelInvoke(pool,
                 {
                     [&] { mobile_sessions = sessionizer.SessionizeRange(mobile); },
                     [&] {
                       // Engagement counts PC sessions as activity too.
                       all_sessions = sessionizer.Sessionize(trace);
                     },
                     [&] {
                       report.mobile_only_column = analysis::BuildUserTypeColumn(
                           usage, analysis::DeviceProfile::kMobileOnly);
                       report.mobile_pc_column = analysis::BuildUserTypeColumn(
                           usage, analysis::DeviceProfile::kMobileAndPc);
                       report.pc_only_column = analysis::BuildUserTypeColumn(
                           usage, analysis::DeviceProfile::kPcOnly);
                     },
                 });

  // --- Phase 3: per-session figures and the return curves. The two file-
  // size EM fits are the heaviest stages of the whole pipeline; they run
  // concurrently with each other and with the engagement analyses.
  ParallelInvoke(
      pool,
      {
          [&] {
            report.session_split = analysis::ClassifySessions(mobile_sessions);
            report.burstiness =
                analysis::NormalizedOperatingTimes(mobile_sessions);
          },
          [&] {
            report.store_size_model = analysis::FitFileSizeModel(
                analysis::AvgFileSizeSample(
                    mobile_sessions, analysis::Session::Type::kStoreOnly));
          },
          [&] {
            report.retrieve_size_model = analysis::FitFileSizeModel(
                analysis::AvgFileSizeSample(
                    mobile_sessions, analysis::Session::Type::kRetrieveOnly));
          },
          [&] {
            report.engagement = analysis::ReturnCurves(
                all_sessions, usage, options_.trace_start, options_.days);
            report.retrieval_returns = analysis::RetrievalReturns(
                all_sessions, usage, options_.trace_start, options_.days);
          },
      });
  return report;
}

}  // namespace mcloud::core
