#include "core/pipeline.h"

#include <unordered_set>

#include "analysis/sessionizer.h"
#include "trace/filters.h"
#include "util/error.h"

namespace mcloud::core {

AnalysisPipeline::AnalysisPipeline(const PipelineOptions& options)
    : options_(options) {
  MCLOUD_REQUIRE(options.days >= 1, "need at least one day");
}

FullReport AnalysisPipeline::Run(std::span<const LogRecord> trace) const {
  MCLOUD_REQUIRE(!trace.empty(), "empty trace");
  FullReport report;

  // --- Dataset overview (§2.2). Mobile figures count mobile records only.
  const std::vector<LogRecord> mobile = MobileOnly(trace);
  report.records = trace.size();
  report.mobile_users = CountDistinctUsers(mobile);
  report.mobile_devices = CountDistinctDevices(mobile);
  std::size_t android = 0;
  for (const auto& r : mobile) {
    if (r.device_type == DeviceType::kAndroid) ++android;
  }
  report.android_access_share =
      mobile.empty() ? 0
                     : static_cast<double>(android) /
                           static_cast<double>(mobile.size());

  // --- Workload pattern (§2.4) over mobile records, as in Fig 1.
  report.timeseries =
      analysis::BuildTimeseries(mobile, options_.trace_start, options_.days);

  // --- Interval model and session identification (§3.1.1).
  const std::vector<double> intervals = analysis::InterOpIntervals(mobile);
  report.interval_model = analysis::FitIntervalModel(intervals);
  const Seconds tau = options_.session_tau > 0
                          ? options_.session_tau
                          : report.interval_model.valley_tau;
  const analysis::Sessionizer sessionizer(tau);
  const std::vector<analysis::Session> sessions =
      sessionizer.Sessionize(mobile);

  report.session_split = analysis::ClassifySessions(sessions);
  report.burstiness = analysis::NormalizedOperatingTimes(sessions);
  report.store_size_model = analysis::FitFileSizeModel(
      analysis::AvgFileSizeSample(sessions,
                                  analysis::Session::Type::kStoreOnly));
  report.retrieve_size_model = analysis::FitFileSizeModel(
      analysis::AvgFileSizeSample(sessions,
                                  analysis::Session::Type::kRetrieveOnly));

  // --- Usage patterns (§3.2) need the full mobile+PC view.
  const std::vector<analysis::UserUsage> usage =
      analysis::BuildUserUsage(trace);
  report.mobile_only_column = analysis::BuildUserTypeColumn(
      usage, analysis::DeviceProfile::kMobileOnly);
  report.mobile_pc_column = analysis::BuildUserTypeColumn(
      usage, analysis::DeviceProfile::kMobileAndPc);
  report.pc_only_column =
      analysis::BuildUserTypeColumn(usage, analysis::DeviceProfile::kPcOnly);

  // Engagement over all sessions (PC sessions count as activity too).
  const std::vector<analysis::Session> all_sessions =
      sessionizer.Sessionize(trace);
  report.engagement = analysis::ReturnCurves(
      all_sessions, usage, options_.trace_start, options_.days);
  report.retrieval_returns = analysis::RetrievalReturns(
      all_sessions, usage, options_.trace_start, options_.days);

  // Activity models (§3.2.3) over mobile users' operations.
  const std::vector<analysis::UserUsage> mobile_usage =
      analysis::BuildUserUsage(mobile);
  report.store_activity =
      analysis::FitActivity(mobile_usage, Direction::kStore);
  report.retrieve_activity =
      analysis::FitActivity(mobile_usage, Direction::kRetrieve);
  return report;
}

}  // namespace mcloud::core
