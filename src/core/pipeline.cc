#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_set>
#include <utility>

#include "analysis/fused_engine.h"
#include "analysis/sessionizer.h"
#include "analysis/stream_engine.h"
#include "trace/filters.h"
#include "util/error.h"
#include "util/parallel.h"

namespace mcloud::core {
namespace {

using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The stages both engines share once the sessions and usage tables exist.
/// Every input is read-only and every stage writes disjoint report fields,
/// so the stages run concurrently; inputs are canonical (ascending user /
/// (user, begin) order), making the outputs engine-independent bit for bit.
void RunSharedStages(ThreadPool& pool, const PipelineOptions& options,
                     const std::vector<analysis::UserUsage>& usage,
                     const std::vector<analysis::UserUsage>& mobile_usage,
                     const std::vector<analysis::Session>& sessions,
                     const std::vector<analysis::Session>& mobile_sessions,
                     FullReport& report, double& per_user_s, double& fits_s) {
  double t_columns = 0;
  double t_stats = 0;
  double t_store_fit = 0;
  double t_retrieve_fit = 0;
  double t_engagement = 0;
  double t_activity = 0;
  ParallelInvoke(
      pool,
      {
          [&] {
            const auto t0 = Clock::now();
            report.mobile_only_column = analysis::BuildUserTypeColumn(
                usage, analysis::DeviceProfile::kMobileOnly);
            report.mobile_pc_column = analysis::BuildUserTypeColumn(
                usage, analysis::DeviceProfile::kMobileAndPc);
            report.pc_only_column = analysis::BuildUserTypeColumn(
                usage, analysis::DeviceProfile::kPcOnly);
            if (options.keep_raw_samples) {
              report.raw.mobile_only_ratio_log10 = analysis::RatioSample(
                  usage, analysis::DeviceProfile::kMobileOnly);
              report.raw.mobile_pc_ratio_log10 = analysis::RatioSample(
                  usage, analysis::DeviceProfile::kMobileAndPc);
            }
            t_columns = Since(t0);
          },
          [&] {
            const auto t0 = Clock::now();
            report.session_split = analysis::ClassifySessions(mobile_sessions);
            report.burstiness =
                analysis::NormalizedOperatingTimes(mobile_sessions);
            if (options.keep_raw_samples) {
              report.raw.session_op_counts.reserve(mobile_sessions.size());
              for (const auto& s : mobile_sessions) {
                report.raw.session_op_counts.push_back(
                    static_cast<double>(s.FileOps()));
              }
            }
            t_stats = Since(t0);
          },
          [&] {
            const auto t0 = Clock::now();
            std::vector<double> sample = analysis::AvgFileSizeSample(
                mobile_sessions, analysis::Session::Type::kStoreOnly);
            report.store_size_model = analysis::FitFileSizeModel(sample);
            if (options.keep_raw_samples)
              report.raw.store_avg_mb = std::move(sample);
            t_store_fit = Since(t0);
          },
          [&] {
            const auto t0 = Clock::now();
            std::vector<double> sample = analysis::AvgFileSizeSample(
                mobile_sessions, analysis::Session::Type::kRetrieveOnly);
            report.retrieve_size_model = analysis::FitFileSizeModel(sample);
            if (options.keep_raw_samples)
              report.raw.retrieve_avg_mb = std::move(sample);
            t_retrieve_fit = Since(t0);
          },
          [&] {
            const auto t0 = Clock::now();
            report.engagement = analysis::ReturnCurves(
                sessions, usage, options.trace_start, options.days);
            report.retrieval_returns = analysis::RetrievalReturns(
                sessions, usage, options.trace_start, options.days);
            t_engagement = Since(t0);
          },
          [&] {
            const auto t0 = Clock::now();
            report.store_activity =
                analysis::FitActivity(mobile_usage, Direction::kStore);
            report.retrieve_activity =
                analysis::FitActivity(mobile_usage, Direction::kRetrieve);
            t_activity = Since(t0);
          },
      });
  per_user_s += t_columns + t_stats + t_engagement;
  fits_s += t_store_fit + t_retrieve_fit + t_activity;
}

}  // namespace

AnalysisPipeline::AnalysisPipeline(const PipelineOptions& options)
    : options_(options) {
  MCLOUD_REQUIRE(options.days >= 1, "need at least one day");
}

FullReport AnalysisPipeline::Run(std::span<const LogRecord> trace,
                                 StageTimings* timings) const {
  MCLOUD_REQUIRE(!trace.empty(), "empty trace");
  const TraceStore store = TraceStore::FromRecords(trace, options_.trace_start);
  return Run(store, timings);
}

// The columnar engine: two fused passes over the store's indexes replace
// the AoS engine's six first-touch scans, then the shared stages run on
// the pool. See analysis/fused_engine.h for why each pass reproduces the
// AoS accumulation order exactly.
FullReport AnalysisPipeline::Run(const TraceStore& store,
                                 StageTimings* timings) const {
  MCLOUD_REQUIRE(!store.empty(), "empty trace");
  const auto t_total = Clock::now();
  StageTimings t;
  ThreadPool pool(options_.threads);
  FullReport report;
  report.records = store.rows();

  // Row-order pass: Fig 1 series, Fig 3 sample, §2.2 record counts.
  auto t0 = Clock::now();
  analysis::FusedRowPassResult row =
      analysis::FusedRowPass(store, options_.trace_start, options_.days);
  t.scan_s += Since(t0);
  report.timeseries = std::move(row.timeseries);
  report.android_access_share =
      row.mobile_records == 0
          ? 0
          : static_cast<double>(row.android_records) /
                static_cast<double>(row.mobile_records);

  t0 = Clock::now();
  report.interval_model = analysis::FitIntervalModel(row.intervals);
  if (options_.keep_raw_samples)
    report.raw.intervals_s = std::move(row.intervals);
  t.fits_s += Since(t0);
  const Seconds tau = options_.session_tau > 0
                          ? options_.session_tau
                          : report.interval_model.valley_tau;

  // Per-user-run pass: both sessionizations + both usage tables, fused.
  t0 = Clock::now();
  analysis::FusedPerUserResult per_user =
      analysis::FusedPerUserPass(store, tau, pool);
  t.sessionize_s += Since(t0);
  report.mobile_users = per_user.mobile_users;
  report.mobile_devices = per_user.mobile_devices;

  RunSharedStages(pool, options_, per_user.usage, per_user.mobile_usage,
                  per_user.sessions, per_user.mobile_sessions, report,
                  t.per_user_s, t.fits_s);
  t.total_s = Since(t_total);
  if (timings) *timings = t;
  return report;
}

// The out-of-core engine: the same two fused walks as Run(const
// TraceStore&), but each walk is a PartitionedTrace::Scan that streams one
// calendar-day partition at a time through the shared streaming cores —
// only the bounded staging block and the dense per-user state are resident.
// Walk 1 additionally collects per-user mobility (the resident engine's
// dedicated pre-pass would cost a third full disk scan here), walk 2 runs
// once τ is fitted. Block boundaries never change any accumulation order,
// so the report is bit-identical to the resident engines.
FullReport AnalysisPipeline::RunOutOfCore(const PartitionedTrace& trace,
                                          StageTimings* timings) const {
  MCLOUD_REQUIRE(trace.rows() > 0, "empty trace");
  const auto t_total = Clock::now();
  StageTimings t;
  ThreadPool pool(options_.threads);
  FullReport report;
  report.records = static_cast<std::size_t>(trace.rows());

  // Staging budget in rows: a staged row costs ~31 bytes across the seven
  // analysis columns; give the scan an eighth of the budget so the dense
  // per-user state and the session output stay the dominant terms.
  const std::size_t budget_mb =
      options_.max_memory_mb ? options_.max_memory_mb : 1024;
  const std::size_t staging_rows = std::max<std::size_t>(
      std::size_t{64} * 1024, budget_mb * (1024 * 1024 / 8) / 32);

  // Walk 1 (row order): Fig 1 series, Fig 3 sample, §2.2 counts, mobility.
  auto t0 = Clock::now();
  analysis::StreamingRowPass row_pass(trace.users(), options_.trace_start,
                                      options_.days, trace.day_base());
  trace.Scan(staging_rows, [&](std::int64_t day, const TraceRowBlock& block) {
    row_pass.Consume(day, block);
  });
  analysis::FusedRowPassResult row = row_pass.TakeResult();
  std::vector<std::uint8_t> mobility = row_pass.TakeMobility();
  t.scan_s += Since(t0);
  report.timeseries = std::move(row.timeseries);
  report.android_access_share =
      row.mobile_records == 0
          ? 0
          : static_cast<double>(row.android_records) /
                static_cast<double>(row.mobile_records);

  t0 = Clock::now();
  report.interval_model = analysis::FitIntervalModel(row.intervals);
  if (options_.keep_raw_samples)
    report.raw.intervals_s = std::move(row.intervals);
  t.fits_s += Since(t0);
  const Seconds tau = options_.session_tau > 0
                          ? options_.session_tau
                          : report.interval_model.valley_tau;

  // Walk 2 (row order, needs τ): both sessionizations + both usage tables.
  t0 = Clock::now();
  analysis::StreamingPerUserPass per_user_pass(trace.user_ids(), tau,
                                               std::move(mobility));
  trace.Scan(staging_rows, [&](std::int64_t, const TraceRowBlock& block) {
    per_user_pass.Consume(block);
  });
  analysis::FusedPerUserResult per_user = per_user_pass.Finish(pool);
  t.sessionize_s += Since(t0);
  report.mobile_users = per_user.mobile_users;
  report.mobile_devices = per_user.mobile_devices;

  RunSharedStages(pool, options_, per_user.usage, per_user.mobile_usage,
                  per_user.sessions, per_user.mobile_sessions, report,
                  t.per_user_s, t.fits_s);
  t.total_s = Since(t_total);
  if (timings) *timings = t;
  return report;
}

// The legacy AoS engine. The §3 analyses form a small dependency DAG:
// everything below reads the trace (or its mobile slice) and writes
// disjoint FullReport fields, so the independent stages of each phase run
// concurrently on the pool. Only two order edges exist: τ (phase 1,
// interval model) gates both sessionizations, and the shared stages need
// the usage tables and sessions. Every stage is a pure function of
// read-only inputs, so the report is identical for every thread count.
FullReport AnalysisPipeline::RunAos(std::span<const LogRecord> trace,
                                    StageTimings* timings) const {
  MCLOUD_REQUIRE(!trace.empty(), "empty trace");
  const auto t_total = Clock::now();
  StageTimings t;
  ThreadPool pool(options_.threads);
  FullReport report;

  // Mobile slice as an index view: 4 bytes per record instead of a full
  // LogRecord copy — the §3.1 stages only ever stream over it.
  const TraceView mobile = MobileOnlyView(trace);

  // Cross-phase intermediates.
  Seconds tau = 0;
  std::vector<analysis::UserUsage> usage;
  std::vector<analysis::UserUsage> mobile_usage;
  double t_overview = 0;
  double t_interval_scan = 0;
  double t_interval_fit = 0;
  double t_usage = 0;
  double t_mobile_usage = 0;

  // --- Phase 1: stages that depend only on the trace / mobile slice.
  ParallelInvoke(
      pool,
      {
          [&] {
            // Dataset overview (§2.2; mobile figures count mobile records
            // only) and the Fig 1 workload pattern (§2.4), in one pass each.
            const auto t0 = Clock::now();
            report.records = trace.size();
            std::unordered_set<std::uint64_t> users;
            std::unordered_set<std::uint64_t> devices;
            std::size_t android = 0;
            for (const LogRecord& r : mobile) {
              users.insert(r.user_id);
              devices.insert(r.device_id);
              if (r.device_type == DeviceType::kAndroid) ++android;
            }
            report.mobile_users = users.size();
            report.mobile_devices = devices.size();
            report.android_access_share =
                mobile.empty() ? 0
                               : static_cast<double>(android) /
                                     static_cast<double>(mobile.size());
            report.timeseries = analysis::BuildTimeseriesFrom(
                mobile, options_.trace_start, options_.days);
            t_overview = Since(t0);
          },
          [&] {
            // Interval model (§3.1.1) and the τ every sessionization uses.
            auto t0 = Clock::now();
            std::vector<double> intervals =
                analysis::InterOpIntervalsFrom(mobile);
            t_interval_scan = Since(t0);
            t0 = Clock::now();
            report.interval_model = analysis::FitIntervalModel(intervals);
            if (options_.keep_raw_samples)
              report.raw.intervals_s = std::move(intervals);
            t_interval_fit = Since(t0);
            tau = options_.session_tau > 0 ? options_.session_tau
                                           : report.interval_model.valley_tau;
          },
          [&] {
            // Usage patterns (§3.2) need the full mobile+PC view.
            const auto t0 = Clock::now();
            usage = analysis::BuildUserUsage(trace);
            t_usage = Since(t0);
          },
          [&] {
            // Per-user activity counts (§3.2.3) over mobile records only.
            const auto t0 = Clock::now();
            mobile_usage = analysis::BuildUserUsageFrom(mobile);
            t_mobile_usage = Since(t0);
          },
      });
  t.scan_s += t_overview + t_interval_scan;
  t.fits_s += t_interval_fit;
  t.per_user_s += t_usage + t_mobile_usage;

  // --- Phase 2: session identification (needs τ).
  const analysis::Sessionizer sessionizer(tau);
  std::vector<analysis::Session> mobile_sessions;
  std::vector<analysis::Session> all_sessions;
  double t_sessionize_mobile = 0;
  double t_sessionize_all = 0;
  ParallelInvoke(pool,
                 {
                     [&] {
                       const auto t0 = Clock::now();
                       mobile_sessions = sessionizer.SessionizeRange(mobile);
                       t_sessionize_mobile = Since(t0);
                     },
                     [&] {
                       // Engagement counts PC sessions as activity too.
                       const auto t0 = Clock::now();
                       all_sessions = sessionizer.Sessionize(trace);
                       t_sessionize_all = Since(t0);
                     },
                 });
  t.sessionize_s += t_sessionize_mobile + t_sessionize_all;

  // --- Phase 3: per-session figures, return curves, and the fits. The two
  // file-size EM fits are the heaviest stages of the whole pipeline; they
  // run concurrently with each other and with everything else here.
  RunSharedStages(pool, options_, usage, mobile_usage, all_sessions,
                  mobile_sessions, report, t.per_user_s, t.fits_s);
  t.total_s = Since(t_total);
  if (timings) *timings = t;
  return report;
}

}  // namespace mcloud::core
