#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "analysis/fused_engine.h"
#include "analysis/sessionizer.h"
#include "analysis/stream_engine.h"
#include "trace/filters.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/units.h"

namespace mcloud::core {
namespace {

using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The stages both engines share once the sessions and usage tables exist.
/// Every input is read-only and every stage writes disjoint report fields,
/// so the stages run concurrently; inputs are canonical (ascending user /
/// (user, begin) order), making the outputs engine-independent bit for bit.
void RunSharedStages(ThreadPool& pool, const PipelineOptions& options,
                     const std::vector<analysis::UserUsage>& usage,
                     const std::vector<analysis::UserUsage>& mobile_usage,
                     const std::vector<analysis::Session>& sessions,
                     const std::vector<analysis::Session>& mobile_sessions,
                     FullReport& report, double& per_user_s, double& fits_s) {
  double t_columns = 0;
  double t_stats = 0;
  double t_store_fit = 0;
  double t_retrieve_fit = 0;
  double t_engagement = 0;
  double t_activity = 0;
  ParallelInvoke(
      pool,
      {
          [&] {
            const auto t0 = Clock::now();
            report.mobile_only_column = analysis::BuildUserTypeColumn(
                usage, analysis::DeviceProfile::kMobileOnly);
            report.mobile_pc_column = analysis::BuildUserTypeColumn(
                usage, analysis::DeviceProfile::kMobileAndPc);
            report.pc_only_column = analysis::BuildUserTypeColumn(
                usage, analysis::DeviceProfile::kPcOnly);
            // Fig 7a counters: RatioSample's membership tests, without
            // materializing the sample (usage is canonical, so the counts
            // are engine- and thread-count-independent).
            for (const analysis::UserUsage& u : usage) {
              if (!u.MobileOnly()) continue;
              if (u.store_volume == 0 && u.retrieve_volume == 0) continue;
              ++report.sketches.ratio_sample_users;
              if (std::abs(std::log10(u.VolumeRatio())) < 5.0)
                ++report.sketches.ratio_middle_users;
            }
            t_columns = Since(t0);
          },
          [&] {
            const auto t0 = Clock::now();
            report.session_split = analysis::ClassifySessions(mobile_sessions);
            report.burstiness =
                analysis::NormalizedOperatingTimes(mobile_sessions);
            // Fig 5a counters (denominator = session_split.total).
            for (const auto& s : mobile_sessions) {
              if (s.FileOps() == 1) ++report.sketches.single_op_sessions;
              if (s.FileOps() > 20) ++report.sketches.over20_op_sessions;
            }
            t_stats = Since(t0);
          },
          [&] {
            const auto t0 = Clock::now();
            // One pass in canonical session order feeds the bin sketch and
            // the t-digest (AvgFileSizeSample's membership and value rules);
            // the fit then runs on the sketch's exact per-bin moments.
            auto& sk = report.sketches;
            for (const auto& s : mobile_sessions) {
              if (s.SessionType() != analysis::Session::Type::kStoreOnly)
                continue;
              if (s.FileOps() == 0 || s.Volume() == 0) continue;
              const double mb =
                  ToMB(s.Volume()) / static_cast<double>(s.FileOps());
              sk.store_avg_mb.Add(mb);
              sk.store_avg_mb_digest.Add(mb);
            }
            report.store_size_model = analysis::FitFileSizeModel(
                sk.store_avg_mb, sk.store_avg_mb_digest);
            t_store_fit = Since(t0);
          },
          [&] {
            const auto t0 = Clock::now();
            auto& sk = report.sketches;
            for (const auto& s : mobile_sessions) {
              if (s.SessionType() != analysis::Session::Type::kRetrieveOnly)
                continue;
              if (s.FileOps() == 0 || s.Volume() == 0) continue;
              const double mb =
                  ToMB(s.Volume()) / static_cast<double>(s.FileOps());
              sk.retrieve_avg_mb.Add(mb);
              sk.retrieve_avg_mb_digest.Add(mb);
            }
            report.retrieve_size_model = analysis::FitFileSizeModel(
                sk.retrieve_avg_mb, sk.retrieve_avg_mb_digest);
            t_retrieve_fit = Since(t0);
          },
          [&] {
            const auto t0 = Clock::now();
            report.engagement = analysis::ReturnCurves(
                sessions, usage, options.trace_start, options.days);
            report.retrieval_returns = analysis::RetrievalReturns(
                sessions, usage, options.trace_start, options.days);
            t_engagement = Since(t0);
          },
          [&] {
            const auto t0 = Clock::now();
            report.store_activity =
                analysis::FitActivity(mobile_usage, Direction::kStore);
            report.retrieve_activity =
                analysis::FitActivity(mobile_usage, Direction::kRetrieve);
            t_activity = Since(t0);
          },
      });
  per_user_s += t_columns + t_stats + t_engagement;
  fits_s += t_store_fit + t_retrieve_fit + t_activity;
}

}  // namespace

AnalysisPipeline::AnalysisPipeline(const PipelineOptions& options)
    : options_(options) {
  MCLOUD_REQUIRE(options.days >= 1, "need at least one day");
}

FullReport AnalysisPipeline::Run(std::span<const LogRecord> trace,
                                 StageTimings* timings) const {
  MCLOUD_REQUIRE(!trace.empty(), "empty trace");
  const TraceStore store = TraceStore::FromRecords(trace, options_.trace_start);
  return Run(store, timings);
}

// The columnar engine: two fused passes over the store's indexes replace
// the AoS engine's six first-touch scans, then the shared stages run on
// the pool. See analysis/fused_engine.h for why each pass reproduces the
// AoS accumulation order exactly.
FullReport AnalysisPipeline::Run(const TraceStore& store,
                                 StageTimings* timings) const {
  MCLOUD_REQUIRE(!store.empty(), "empty trace");
  const auto t_total = Clock::now();
  StageTimings t;
  ThreadPool pool(ClampThreadsToHardware(options_.threads));
  FullReport report;
  report.records = store.rows();

  // Row-order pass: Fig 1 series, Fig 3 sample, §2.2 record counts.
  auto t0 = Clock::now();
  analysis::FusedRowPassResult row =
      analysis::FusedRowPass(store, options_.trace_start, options_.days);
  t.scan_s += Since(t0);
  report.timeseries = std::move(row.timeseries);
  report.android_access_share =
      row.mobile_records == 0
          ? 0
          : static_cast<double>(row.android_records) /
                static_cast<double>(row.mobile_records);

  t0 = Clock::now();
  report.interval_model = analysis::FitIntervalModel(row.intervals);
  report.sketches.intervals = std::move(row.intervals);
  t.fits_s += Since(t0);
  const Seconds tau = options_.session_tau > 0
                          ? options_.session_tau
                          : report.interval_model.valley_tau;

  // Per-user-run pass: both sessionizations + both usage tables, fused.
  t0 = Clock::now();
  analysis::FusedPerUserResult per_user =
      analysis::FusedPerUserPass(store, tau, pool);
  t.sessionize_s += Since(t0);
  report.mobile_users = per_user.mobile_users;
  report.mobile_devices = per_user.mobile_devices;

  RunSharedStages(pool, options_, per_user.usage, per_user.mobile_usage,
                  per_user.sessions, per_user.mobile_sessions, report,
                  t.per_user_s, t.fits_s);
  t.total_s = Since(t_total);
  if (timings) *timings = t;
  return report;
}

// The out-of-core engine: the same two fused walks as Run(const
// TraceStore&), but each walk is a PartitionedTrace::Scan that streams one
// calendar-day partition at a time through the shared streaming cores —
// only the bounded staging block and the dense per-user state are resident.
// Walk 1 additionally collects per-user mobility (the resident engine's
// dedicated pre-pass would cost a third full disk scan here), walk 2 runs
// once τ is fitted. Block boundaries never change any accumulation order,
// so the report is bit-identical to the resident engines.
FullReport AnalysisPipeline::RunOutOfCore(const PartitionedTrace& trace,
                                          StageTimings* timings) const {
  MCLOUD_REQUIRE(trace.rows() > 0, "empty trace");
  const auto t_total = Clock::now();
  StageTimings t;
  ThreadPool pool(ClampThreadsToHardware(options_.threads));
  FullReport report;
  report.records = static_cast<std::size_t>(trace.rows());

  // Staging budget in rows: a staged row costs ~31 bytes across the seven
  // analysis columns; give the scan an eighth of the budget so the dense
  // per-user state and the session output stay the dominant terms.
  const std::size_t budget_mb =
      options_.max_memory_mb ? options_.max_memory_mb : 1024;
  const std::size_t staging_rows = std::max<std::size_t>(
      std::size_t{64} * 1024, budget_mb * (1024 * 1024 / 8) / 32);

  // Walk 1 (row order): Fig 1 series, Fig 3 sample, §2.2 counts, mobility.
  auto t0 = Clock::now();
  analysis::StreamingRowPass row_pass(trace.user_ids(), options_.trace_start,
                                      options_.days, trace.day_base());
  trace.Scan(staging_rows, [&](std::int64_t day, const TraceRowBlock& block) {
    row_pass.Consume(day, block);
  });
  analysis::FusedRowPassResult row = row_pass.TakeResult();
  std::vector<std::uint8_t> mobility = row_pass.TakeMobility();
  t.scan_s += Since(t0);
  report.timeseries = std::move(row.timeseries);
  report.android_access_share =
      row.mobile_records == 0
          ? 0
          : static_cast<double>(row.android_records) /
                static_cast<double>(row.mobile_records);

  t0 = Clock::now();
  report.interval_model = analysis::FitIntervalModel(row.intervals);
  report.sketches.intervals = std::move(row.intervals);
  t.fits_s += Since(t0);
  const Seconds tau = options_.session_tau > 0
                          ? options_.session_tau
                          : report.interval_model.valley_tau;

  // Walk 2 (row order, needs τ): both sessionizations + both usage tables.
  t0 = Clock::now();
  analysis::StreamingPerUserPass per_user_pass(trace.user_ids(), tau,
                                               std::move(mobility));
  trace.Scan(staging_rows, [&](std::int64_t, const TraceRowBlock& block) {
    per_user_pass.Consume(block);
  });
  analysis::FusedPerUserResult per_user = per_user_pass.Finish(pool);
  t.sessionize_s += Since(t0);
  report.mobile_users = per_user.mobile_users;
  report.mobile_devices = per_user.mobile_devices;

  RunSharedStages(pool, options_, per_user.usage, per_user.mobile_usage,
                  per_user.sessions, per_user.mobile_sessions, report,
                  t.per_user_s, t.fits_s);
  t.total_s = Since(t_total);
  if (timings) *timings = t;
  return report;
}

// The legacy AoS engine. The §3 analyses form a small dependency DAG:
// everything below reads the trace (or its mobile slice) and writes
// disjoint FullReport fields, so the independent stages of each phase run
// concurrently on the pool. Only two order edges exist: τ (phase 1,
// interval model) gates both sessionizations, and the shared stages need
// the usage tables and sessions. Every stage is a pure function of
// read-only inputs, so the report is identical for every thread count.
FullReport AnalysisPipeline::RunAos(std::span<const LogRecord> trace,
                                    StageTimings* timings) const {
  MCLOUD_REQUIRE(!trace.empty(), "empty trace");
  const auto t_total = Clock::now();
  StageTimings t;
  ThreadPool pool(ClampThreadsToHardware(options_.threads));
  FullReport report;

  // Mobile slice as an index view: 4 bytes per record instead of a full
  // LogRecord copy — the §3.1 stages only ever stream over it.
  const TraceView mobile = MobileOnlyView(trace);

  // Cross-phase intermediates.
  Seconds tau = 0;
  std::vector<analysis::UserUsage> usage;
  std::vector<analysis::UserUsage> mobile_usage;
  double t_overview = 0;
  double t_interval_scan = 0;
  double t_interval_fit = 0;
  double t_usage = 0;
  double t_mobile_usage = 0;

  // --- Phase 1: stages that depend only on the trace / mobile slice.
  ParallelInvoke(
      pool,
      {
          [&] {
            // Dataset overview (§2.2; mobile figures count mobile records
            // only) and the Fig 1 workload pattern (§2.4), in one pass each.
            const auto t0 = Clock::now();
            report.records = trace.size();
            std::unordered_set<std::uint64_t> users;
            std::unordered_set<std::uint64_t> devices;
            std::size_t android = 0;
            for (const LogRecord& r : mobile) {
              users.insert(r.user_id);
              devices.insert(r.device_id);
              if (r.device_type == DeviceType::kAndroid) ++android;
            }
            report.mobile_users = users.size();
            report.mobile_devices = devices.size();
            report.android_access_share =
                mobile.empty() ? 0
                               : static_cast<double>(android) /
                                     static_cast<double>(mobile.size());
            report.timeseries = analysis::BuildTimeseriesFrom(
                mobile, options_.trace_start, options_.days);
            t_overview = Since(t0);
          },
          [&] {
            // Interval model (§3.1.1) and the τ every sessionization uses.
            auto t0 = Clock::now();
            LogBins intervals = analysis::MakeIntervalSketch();
            analysis::AddInterOpIntervalsToSketch(mobile, intervals);
            t_interval_scan = Since(t0);
            t0 = Clock::now();
            report.interval_model = analysis::FitIntervalModel(intervals);
            report.sketches.intervals = std::move(intervals);
            t_interval_fit = Since(t0);
            tau = options_.session_tau > 0 ? options_.session_tau
                                           : report.interval_model.valley_tau;
          },
          [&] {
            // Usage patterns (§3.2) need the full mobile+PC view.
            const auto t0 = Clock::now();
            usage = analysis::BuildUserUsage(trace);
            t_usage = Since(t0);
          },
          [&] {
            // Per-user activity counts (§3.2.3) over mobile records only.
            const auto t0 = Clock::now();
            mobile_usage = analysis::BuildUserUsageFrom(mobile);
            t_mobile_usage = Since(t0);
          },
      });
  t.scan_s += t_overview + t_interval_scan;
  t.fits_s += t_interval_fit;
  t.per_user_s += t_usage + t_mobile_usage;

  // --- Phase 2: session identification (needs τ).
  const analysis::Sessionizer sessionizer(tau);
  std::vector<analysis::Session> mobile_sessions;
  std::vector<analysis::Session> all_sessions;
  double t_sessionize_mobile = 0;
  double t_sessionize_all = 0;
  ParallelInvoke(pool,
                 {
                     [&] {
                       const auto t0 = Clock::now();
                       mobile_sessions = sessionizer.SessionizeRange(mobile);
                       t_sessionize_mobile = Since(t0);
                     },
                     [&] {
                       // Engagement counts PC sessions as activity too.
                       const auto t0 = Clock::now();
                       all_sessions = sessionizer.Sessionize(trace);
                       t_sessionize_all = Since(t0);
                     },
                 });
  t.sessionize_s += t_sessionize_mobile + t_sessionize_all;

  // --- Phase 3: per-session figures, return curves, and the fits. The two
  // file-size EM fits are the heaviest stages of the whole pipeline; they
  // run concurrently with each other and with everything else here.
  RunSharedStages(pool, options_, usage, mobile_usage, all_sessions,
                  mobile_sessions, report, t.per_user_s, t.fits_s);
  t.total_s = Since(t_total);
  if (timings) *timings = t;
  return report;
}

// The single-walk out-of-core engine: both streaming passes ride the same
// Scan. The per-user pass runs in inline-mobility mode — it speculatively
// folds every user's mobile rows and discards the mobile-only users'
// speculative results at Finish, which is provably the same output as the
// two-walk form (see stream_engine.h) — so nothing gates walk 2 on walk 1
// and one disk pass suffices.
FullReport AnalysisPipeline::RunStreaming(const PartitionedTrace& trace,
                                          StageTimings* timings) const {
  MCLOUD_REQUIRE(trace.rows() > 0, "empty trace");
  MCLOUD_REQUIRE(options_.session_tau > 0,
                 "the single-walk engine needs a fixed session tau: the "
                 "valley-derived tau would gate sessionization on the "
                 "completed interval sketch");
  const auto t_total = Clock::now();
  StageTimings t;
  ThreadPool pool(ClampThreadsToHardware(options_.threads));
  FullReport report;
  report.records = static_cast<std::size_t>(trace.rows());

  const std::size_t budget_mb =
      options_.max_memory_mb ? options_.max_memory_mb : 1024;
  const std::size_t staging_rows = std::max<std::size_t>(
      std::size_t{64} * 1024, budget_mb * (1024 * 1024 / 8) / 32);

  auto t0 = Clock::now();
  analysis::StreamingRowPass row_pass(trace.user_ids(), options_.trace_start,
                                      options_.days, trace.day_base());
  analysis::StreamingPerUserPass per_user_pass(trace.user_ids(),
                                               options_.session_tau);
  trace.Scan(staging_rows, [&](std::int64_t day, const TraceRowBlock& block) {
    row_pass.Consume(day, block);
    per_user_pass.Consume(block);
  });
  analysis::FusedRowPassResult row = row_pass.TakeResult();
  t.scan_s += Since(t0);
  report.timeseries = std::move(row.timeseries);
  report.android_access_share =
      row.mobile_records == 0
          ? 0
          : static_cast<double>(row.android_records) /
                static_cast<double>(row.mobile_records);

  t0 = Clock::now();
  report.interval_model = analysis::FitIntervalModel(row.intervals);
  report.sketches.intervals = std::move(row.intervals);
  t.fits_s += Since(t0);

  t0 = Clock::now();
  analysis::FusedPerUserResult per_user = per_user_pass.Finish(pool);
  t.sessionize_s += Since(t0);
  report.mobile_users = per_user.mobile_users;
  report.mobile_devices = per_user.mobile_devices;

  RunSharedStages(pool, options_, per_user.usage, per_user.mobile_usage,
                  per_user.sessions, per_user.mobile_sessions, report,
                  t.per_user_s, t.fits_s);
  t.total_s = Since(t_total);
  if (timings) *timings = t;
  return report;
}

// The analyze-while-generate engine. The producer (typically
// GenerateToPartitions' spill path) hands over sealed columnar slices
// through a depth-1 bounded queue; a consumer thread drives the same
// streaming cores RunStreaming uses directly over the slice's columns
// (no transpose — the producer already emits SoA) while the producer
// builds the next one. Because every
// slice is time-sorted and carries a contiguous ascending user range's
// complete history, per-slice results are already in canonical order and
// concatenate (sessions/usage) or sum (hour bins, interval sketch, counts)
// into exactly the inputs the resident engine hands RunSharedStages — so
// the report is bit-identical to Run on the concatenated trace.
FullReport AnalysisPipeline::RunConcurrent(
    const std::function<void(const SliceConsumer&)>& produce,
    StageTimings* timings) const {
  MCLOUD_REQUIRE(options_.session_tau > 0,
                 "analyze-while-generate needs a fixed session tau: the "
                 "valley-derived tau is only known after the last slice");
  const auto t_total = Clock::now();
  StageTimings t;
  FullReport report;

  // State below the line is owned by the consumer thread until join().
  analysis::FusedRowPassResult row;
  analysis::FusedPerUserResult per_user;
  std::size_t records = 0;
  double slice_scan_s = 0;
  double slice_sessionize_s = 0;
  std::exception_ptr consumer_error;

  // Depth-1 queue: one slice being analyzed, one being generated. The
  // producer blocks in the sink while the consumer is busy, bounding
  // resident data to two slices and pacing generation to analysis.
  std::mutex mu;
  std::condition_variable cv;
  RecordColumns slot;
  bool full = false;
  bool done = false;

  std::thread consumer([&] {
    // Finish's canonical sorts run inline here: ThreadPool::Run must not be
    // entered from two threads, and the caller owns the real pool.
    ThreadPool slice_pool(1);
    // The slice already is structure-of-arrays — its columns feed the
    // streaming cores directly. The only per-slice staging is the dense
    // user remap (reused across slices).
    std::vector<std::uint32_t> users;
    std::vector<std::uint64_t> user_ids;
    for (;;) {
      RecordColumns slice;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return full || done; });
        if (!full && done) return;
        slice = std::move(slot);
        slot.clear();
        full = false;
      }
      cv.notify_all();
      // After a failure, keep draining so the producer never deadlocks.
      if (slice.empty() || consumer_error) continue;
      try {
        auto t0 = Clock::now();
        const std::size_t n = slice.size();
        // Slice-local dense user remap (ascending original ids) — the same
        // remap TraceStore would build, scoped to this slice's users.
        user_ids = slice.user_ids;
        std::sort(user_ids.begin(), user_ids.end());
        user_ids.erase(std::unique(user_ids.begin(), user_ids.end()),
                       user_ids.end());
        users.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          users[i] = static_cast<std::uint32_t>(
              std::lower_bound(user_ids.begin(), user_ids.end(),
                               slice.user_ids[i]) -
              user_ids.begin());
        }

        analysis::StreamingRowPass row_pass(user_ids, options_.trace_start,
                                            options_.days,
                                            options_.trace_start);
        analysis::StreamingPerUserPass per_user_pass(user_ids,
                                                     options_.session_tau);
        // Feed calendar-day segments (StreamingRowPass's Consume contract;
        // the per-user pass ignores day boundaries).
        const auto day_of = [&](std::int64_t t) {
          const std::int64_t rel = t - options_.trace_start;
          return rel >= 0 ? rel / kDay : -((-rel + kDay - 1) / kDay);
        };
        const std::span<const std::int64_t> ts = slice.timestamps;
        std::size_t begin = 0;
        while (begin < n) {
          const std::int64_t day = day_of(ts[begin]);
          std::size_t end = begin + 1;
          while (end < n && day_of(ts[end]) == day) ++end;
          const std::size_t len = end - begin;
          const TraceRowBlock block{
              ts.subspan(begin, len),
              std::span<const std::uint8_t>(slice.device_types)
                  .subspan(begin, len),
              std::span<const std::uint64_t>(slice.device_ids)
                  .subspan(begin, len),
              std::span<const std::uint32_t>(users).subspan(begin, len),
              std::span<const std::uint8_t>(slice.request_types)
                  .subspan(begin, len),
              std::span<const std::uint8_t>(slice.directions)
                  .subspan(begin, len),
              std::span<const std::uint64_t>(slice.data_volumes)
                  .subspan(begin, len)};
          row_pass.Consume(day, block);
          per_user_pass.Consume(block);
          begin = end;
        }
        slice = RecordColumns();  // release before Finish's sorts peak
        analysis::FusedRowPassResult r = row_pass.TakeResult();
        slice_scan_s += Since(t0);
        t0 = Clock::now();
        analysis::FusedPerUserResult p = per_user_pass.Finish(slice_pool);
        slice_sessionize_s += Since(t0);

        records += n;
        if (row.timeseries.hours.empty()) {
          row.timeseries = std::move(r.timeseries);
        } else {
          MCLOUD_REQUIRE(
              row.timeseries.hours.size() == r.timeseries.hours.size(),
              "slice hour windows disagree");
          for (std::size_t i = 0; i < row.timeseries.hours.size(); ++i) {
            auto& dst = row.timeseries.hours[i];
            const auto& src = r.timeseries.hours[i];
            dst.store_volume_bytes += src.store_volume_bytes;
            dst.retrieve_volume_bytes += src.retrieve_volume_bytes;
            dst.stored_files += src.stored_files;
            dst.retrieved_files += src.retrieved_files;
          }
        }
        row.intervals.Merge(r.intervals);
        row.mobile_records += r.mobile_records;
        row.android_records += r.android_records;

        auto append = [](auto& dst, auto& src) {
          dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                     std::make_move_iterator(src.end()));
        };
        append(per_user.sessions, p.sessions);
        append(per_user.mobile_sessions, p.mobile_sessions);
        append(per_user.usage, p.usage);
        append(per_user.mobile_usage, p.mobile_usage);
        append(per_user.mobile_device_ids, p.mobile_device_ids);
        per_user.mobile_users += p.mobile_users;
      } catch (...) {
        consumer_error = std::current_exception();
      }
    }
  });

  const SliceConsumer sink = [&](RecordColumns&& slice) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !full; });
    slot = std::move(slice);
    full = true;
    lock.unlock();
    cv.notify_all();
  };
  try {
    produce(sink);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_all();
    consumer.join();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  consumer.join();
  if (consumer_error) std::rethrow_exception(consumer_error);
  MCLOUD_REQUIRE(records > 0, "empty trace");
  t.scan_s += slice_scan_s;
  t.sessionize_s += slice_sessionize_s;

  ThreadPool pool(ClampThreadsToHardware(options_.threads));
  report.records = records;
  report.timeseries = std::move(row.timeseries);
  report.android_access_share =
      row.mobile_records == 0
          ? 0
          : static_cast<double>(row.android_records) /
                static_cast<double>(row.mobile_records);

  auto t0 = Clock::now();
  report.interval_model = analysis::FitIntervalModel(row.intervals);
  report.sketches.intervals = std::move(row.intervals);
  t.fits_s += Since(t0);

  // Device ids can recur across slices (a device id is only distinct per
  // user within a slice): union them for the global distinct count.
  auto& ids = per_user.mobile_device_ids;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  report.mobile_users = per_user.mobile_users;
  report.mobile_devices = ids.size();

  RunSharedStages(pool, options_, per_user.usage, per_user.mobile_usage,
                  per_user.sessions, per_user.mobile_sessions, report,
                  t.per_user_s, t.fits_s);
  t.total_s = Since(t_total);
  if (timings) *timings = t;
  return report;
}

}  // namespace mcloud::core
