// "Smart auto backup" upload deferral (§3.2.2 implication).
//
// The paper observes that ~80% of mobile uploaders never retrieve their
// uploads within the week, so most uploads are deferrable: shifting them out
// of the evening surge into the early-morning trough flattens the load that
// storage capacity must be provisioned for. This simulator applies a
// deferral policy to a trace and reports the before/after hourly storage
// load and the peak reduction.
#pragma once

#include <span>
#include <vector>

#include "analysis/usage_patterns.h"
#include "analysis/workload_timeseries.h"
#include "trace/log_record.h"

namespace mcloud::core {

struct DeferralPolicy {
  /// Uploads starting in [peak_begin_hour, peak_end_hour) local hours are
  /// candidates (the paper suggests deferring the 9 PM–11 PM surge).
  int peak_begin_hour = 19;
  int peak_end_hour = 24;
  /// Deferred uploads run in [defer_begin_hour, defer_end_hour) the next
  /// morning. The window must be wide enough that the moved volume does not
  /// simply create a new morning peak.
  int defer_begin_hour = 1;
  int defer_end_hour = 8;
  /// Only defer uploads of users who do not retrieve within the trace —
  /// deferring a file its owner wants back the same evening hurts QoE.
  bool only_non_retrievers = true;
  /// Fraction of candidate uploads whose owners opt in.
  double opt_in = 1.0;
};

struct DeferralResult {
  analysis::WorkloadTimeseries before;
  analysis::WorkloadTimeseries after;
  double peak_before_gb = 0;      ///< max hourly store volume
  double peak_after_gb = 0;
  double peak_reduction = 0;      ///< 1 - after/before
  double deferred_share = 0;      ///< share of store volume deferred
  std::uint64_t deferred_chunks = 0;
};

/// Apply the policy to a time-sorted trace. Deterministic given `seed`
/// (opt-in sampling and slot placement).
[[nodiscard]] DeferralResult SimulateDeferral(
    std::span<const LogRecord> trace, const DeferralPolicy& policy,
    UnixSeconds trace_start, int days = 7, std::uint64_t seed = 1);

}  // namespace mcloud::core
