// AnalysisPipeline: the end-to-end §3 methodology as one call — trace in,
// FullReport out. This is the primary public entry point of the library for
// log-analysis consumers (see examples/quickstart.cpp).
#pragma once

#include <span>

#include "core/report.h"
#include "trace/log_record.h"

namespace mcloud::core {

struct PipelineOptions {
  UnixSeconds trace_start = kTraceStart;
  int days = 7;
  /// τ for session identification; 0 = derive it from the data via the
  /// Fig 3 histogram-valley method instead of assuming one hour.
  Seconds session_tau = kHour;
  /// Worker threads for the independent analysis stages; 0 = hardware
  /// concurrency. Results are identical for every thread count — stages
  /// compute disjoint report fields from read-only inputs.
  int threads = 0;
};

class AnalysisPipeline {
 public:
  explicit AnalysisPipeline(const PipelineOptions& options = {});

  /// Run every §3 analysis over a time-sorted trace (mobile + PC records).
  [[nodiscard]] FullReport Run(std::span<const LogRecord> trace) const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
};

}  // namespace mcloud::core
