// AnalysisPipeline: the end-to-end §3 methodology as one call — trace in,
// FullReport out. This is the primary public entry point of the library for
// log-analysis consumers (see examples/quickstart.cpp).
//
// Two engines produce the same FullReport, bit for bit:
//   * Run(const TraceStore&) — the columnar engine: fused row-order and
//     per-user-run passes over the structure-of-arrays store (see
//     analysis/fused_engine.h), then the shared fit/aggregation stages.
//   * RunAos(span) — the legacy engine: per-stage scans over the AoS
//     LogRecord array. Kept as the equivalence baseline and for callers
//     that cannot build a store.
// Run(span) is a thin adapter: it builds a TraceStore and runs the columnar
// engine.
#pragma once

#include <cstddef>
#include <span>

#include "core/report.h"
#include "trace/log_record.h"
#include "trace/partitioned_trace.h"
#include "trace/trace_store.h"

namespace mcloud::core {

struct PipelineOptions {
  UnixSeconds trace_start = kTraceStart;
  int days = 7;
  /// τ for session identification; 0 = derive it from the data via the
  /// Fig 3 histogram-valley method instead of assuming one hour.
  Seconds session_tau = kHour;
  /// Worker threads for the independent analysis stages; 0 = hardware
  /// concurrency. Results are identical for every thread count — stages
  /// compute disjoint report fields from read-only inputs.
  int threads = 0;
  /// Keep the raw empirical samples behind the fitted summaries in
  /// FullReport::raw (the validation layer's KS/AD inputs). Both engines
  /// export bit-identical samples; off by default because the copies cost
  /// memory proportional to the trace.
  bool keep_raw_samples = false;
  /// Approximate resident budget (MB) for RunOutOfCore's streaming buffers;
  /// 0 = a 1 GiB default. Only a tuning knob — the report is bit-identical
  /// at every budget.
  std::size_t max_memory_mb = 0;
};

/// Wall-clock seconds spent per stage family, for the bench breakdowns.
/// Stages run concurrently, so the fields can sum to more than `total_s`.
struct StageTimings {
  /// Row-order scans: hourly series, interval sample, overview counts.
  double scan_s = 0;
  /// Session identification (the columnar engine's fused per-user pass also
  /// builds the usage tables inside this number).
  double sessionize_s = 0;
  /// Per-user aggregations: usage tables (AoS), Table 3 columns,
  /// engagement curves, session statistics.
  double per_user_s = 0;
  /// Numeric fits: interval GMM, activity models, file-size EM mixtures.
  double fits_s = 0;
  double total_s = 0;
};

class AnalysisPipeline {
 public:
  explicit AnalysisPipeline(const PipelineOptions& options = {});

  /// Run every §3 analysis over a time-sorted trace (mobile + PC records).
  /// Converts to a TraceStore and runs the columnar engine.
  [[nodiscard]] FullReport Run(std::span<const LogRecord> trace,
                               StageTimings* timings = nullptr) const;

  /// Columnar engine over a prebuilt store (needs kAnalysisColumns).
  [[nodiscard]] FullReport Run(const TraceStore& store,
                               StageTimings* timings = nullptr) const;

  /// Legacy AoS engine; FullReport is bit-identical to the columnar paths.
  [[nodiscard]] FullReport RunAos(std::span<const LogRecord> trace,
                                  StageTimings* timings = nullptr) const;

  /// Out-of-core engine: two streaming walks over a partitioned on-disk
  /// trace, one calendar-day partition at a time, under the
  /// `max_memory_mb` staging budget. The FullReport is bit-identical to
  /// Run(const TraceStore&) on the merged resident trace, at every thread
  /// count and every budget (see analysis/stream_engine.h).
  [[nodiscard]] FullReport RunOutOfCore(const PartitionedTrace& trace,
                                        StageTimings* timings = nullptr) const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
};

}  // namespace mcloud::core
