// AnalysisPipeline: the end-to-end §3 methodology as one call — trace in,
// FullReport out. This is the primary public entry point of the library for
// log-analysis consumers (see examples/quickstart.cpp).
//
// Two engines produce the same FullReport, bit for bit:
//   * Run(const TraceStore&) — the columnar engine: fused row-order and
//     per-user-run passes over the structure-of-arrays store (see
//     analysis/fused_engine.h), then the shared fit/aggregation stages.
//   * RunAos(span) — the legacy engine: per-stage scans over the AoS
//     LogRecord array. Kept as the equivalence baseline and for callers
//     that cannot build a store.
// Run(span) is a thin adapter: it builds a TraceStore and runs the columnar
// engine.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/report.h"
#include "trace/log_record.h"
#include "trace/partitioned_trace.h"
#include "trace/record_columns.h"
#include "trace/trace_store.h"

namespace mcloud::core {

struct PipelineOptions {
  UnixSeconds trace_start = kTraceStart;
  int days = 7;
  /// τ for session identification; 0 = derive it from the data via the
  /// Fig 3 histogram-valley method instead of assuming one hour.
  Seconds session_tau = kHour;
  /// Worker threads for the independent analysis stages; 0 = hardware
  /// concurrency, and requests wider than the hardware are clamped to it
  /// (oversubscribing the CPU-bound fit stages only slows them down).
  /// Results are identical for every thread count — stages compute disjoint
  /// report fields from read-only inputs.
  int threads = 0;
  /// Approximate resident budget (MB) for the streaming engines' staging
  /// buffers; 0 = a 1 GiB default. Only a tuning knob — the report is
  /// bit-identical at every budget.
  std::size_t max_memory_mb = 0;
};

/// Wall-clock seconds spent per stage family, for the bench breakdowns.
/// Stages run concurrently, so the fields can sum to more than `total_s`.
struct StageTimings {
  /// Row-order scans: hourly series, interval sample, overview counts.
  double scan_s = 0;
  /// Session identification (the columnar engine's fused per-user pass also
  /// builds the usage tables inside this number).
  double sessionize_s = 0;
  /// Per-user aggregations: usage tables (AoS), Table 3 columns,
  /// engagement curves, session statistics.
  double per_user_s = 0;
  /// Numeric fits: interval GMM, activity models, file-size EM mixtures.
  double fits_s = 0;
  double total_s = 0;
};

class AnalysisPipeline {
 public:
  explicit AnalysisPipeline(const PipelineOptions& options = {});

  /// Run every §3 analysis over a time-sorted trace (mobile + PC records).
  /// Converts to a TraceStore and runs the columnar engine.
  [[nodiscard]] FullReport Run(std::span<const LogRecord> trace,
                               StageTimings* timings = nullptr) const;

  /// Columnar engine over a prebuilt store (needs kAnalysisColumns).
  [[nodiscard]] FullReport Run(const TraceStore& store,
                               StageTimings* timings = nullptr) const;

  /// Legacy AoS engine; FullReport is bit-identical to the columnar paths.
  [[nodiscard]] FullReport RunAos(std::span<const LogRecord> trace,
                                  StageTimings* timings = nullptr) const;

  /// Out-of-core engine: two streaming walks over a partitioned on-disk
  /// trace, one calendar-day partition at a time, under the
  /// `max_memory_mb` staging budget. The FullReport is bit-identical to
  /// Run(const TraceStore&) on the merged resident trace, at every thread
  /// count and every budget (see analysis/stream_engine.h).
  [[nodiscard]] FullReport RunOutOfCore(const PartitionedTrace& trace,
                                        StageTimings* timings = nullptr) const;

  /// Single-walk out-of-core engine: ONE disk scan feeds both streaming
  /// passes at once — the per-user pass runs in inline-mobility mode (see
  /// stream_engine.h), so it needs no mobility table from walk 1. Requires
  /// a fixed `session_tau` (> 0): the valley-derived τ would gate
  /// sessionization on the completed interval sketch. Bit-identical to
  /// RunOutOfCore at half the disk traffic.
  [[nodiscard]] FullReport RunStreaming(const PartitionedTrace& trace,
                                        StageTimings* timings = nullptr) const;

  /// Sink for RunConcurrent's producer: hand over one sealed, time-sorted
  /// trace slice in columnar (SoA) form — the generator fast path's native
  /// layout, so no transpose happens on the analysis side. Blocks while the
  /// analysis side is busy (bounded queue, depth 1), which backpressures
  /// generation to the analysis rate.
  using SliceConsumer = std::function<void(RecordColumns&&)>;

  /// Analyze-while-generate engine: `produce` emits sealed trace slices into
  /// a bounded queue; a consumer thread analyzes each slice with the fused
  /// columnar passes while the producer builds the next one, and the merged
  /// results feed the same shared fit stages. Requires a fixed
  /// `session_tau` (> 0) and slices that (a) are time-sorted internally,
  /// (b) partition the user space into contiguous ascending ranges — every
  /// user's full history in exactly one slice — as
  /// GenerateToPartitions' spill slices do. Under those invariants the
  /// FullReport is bit-identical to Run on the concatenated trace.
  [[nodiscard]] FullReport RunConcurrent(
      const std::function<void(const SliceConsumer&)>& produce,
      StageTimings* timings = nullptr) const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
};

}  // namespace mcloud::core
