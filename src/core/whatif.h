// §4.3 what-if experiments: quantify the transmission optimizations the
// paper proposes by re-running the TCP substrate with the knobs turned —
// larger chunks, batched chunk requests, server-side window scaling, and
// disabled slow-start-after-idle.
#pragma once

#include <string>
#include <vector>

#include "cloud/storage_service.h"

namespace mcloud::core {

struct WhatIfScenario {
  std::string name;
  cloud::ServiceConfig service{};   ///< knobs to apply
  Bytes wire_chunk = kChunkSize;    ///< effective per-request payload
};

struct WhatIfOutcome {
  std::string name;
  double median_file_time = 0;     ///< seconds to upload the test file
  double mean_file_time = 0;
  double median_chunk_ttran = 0;
  double restart_share = 0;        ///< inter-chunk gaps restarting slow start
  double timeouts_per_flow = 0;    ///< burst-loss retransmission timeouts
  double goodput_mbps = 0;         ///< file size / median file time
};

struct WhatIfConfig {
  DeviceType device = DeviceType::kAndroid;
  Direction direction = Direction::kStore;
  Bytes file_size = 8 * kMiB;      ///< a multi-chunk upload
  std::size_t flows = 400;
  std::uint64_t seed = 99;
  /// Worker threads for the per-flow sweep (0 = hardware concurrency).
  /// Each flow is seeded independently, so the outcome is identical for
  /// every thread count.
  int threads = 0;
};

/// The paper's four §4.3 levers plus the baseline, pre-configured.
[[nodiscard]] std::vector<WhatIfScenario> StandardScenarios();

/// Chunk-size sweep scenarios (512 KB → 2 MB, §4.3's "increase the chunk
/// size to 1.5~2 MB").
[[nodiscard]] std::vector<WhatIfScenario> ChunkSizeSweep();

/// Run `config.flows` independent file transfers per scenario and
/// summarize.
[[nodiscard]] std::vector<WhatIfOutcome> RunWhatIf(
    const WhatIfConfig& config, std::span<const WhatIfScenario> scenarios);

/// §2.1 ablation: the service lets one TCP connection carry several files.
/// Compare uploading a multi-file batch over (a) one fresh connection per
/// file vs (b) a single reused connection, where the inter-file think time
/// becomes TCP idle on the reused connection (risking slow-start restart,
/// but keeping ssthresh and saving handshakes).
struct ConnectionStrategyOutcome {
  double per_file_median = 0;   ///< total batch time, fresh connections (s)
  double reused_median = 0;     ///< total batch time, one connection (s)
  double reused_restarts = 0;   ///< mean slow-start restarts on the reused
                                ///< connection (incl. inter-file idles)
  double per_file_restarts = 0;
};
struct ConnectionStrategyConfig {
  DeviceType device = DeviceType::kAndroid;
  std::size_t files = 8;
  Bytes file_size = 2 * kMiB;
  Seconds inter_file_gap = 2.0;  ///< user gap between file completions
  std::size_t trials = 200;
  std::uint64_t seed = 17;
  /// Worker threads for the per-trial sweep (0 = hardware concurrency);
  /// trials are independently seeded, so output never depends on it.
  int threads = 0;
};
[[nodiscard]] ConnectionStrategyOutcome CompareConnectionStrategies(
    const ConnectionStrategyConfig& config);

}  // namespace mcloud::core
