#include "core/whatif.h"

#include <algorithm>

#include "cloud/client_model.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/summary.h"

namespace mcloud::core {

std::vector<WhatIfScenario> StandardScenarios() {
  std::vector<WhatIfScenario> out;

  WhatIfScenario baseline;
  baseline.name = "baseline (512KB chunks, 64KB rwnd, SSAI on)";
  out.push_back(baseline);

  WhatIfScenario big_chunks;
  big_chunks.name = "2MB chunks";
  big_chunks.service.chunk_size = 2 * kMiB;
  big_chunks.wire_chunk = 2 * kMiB;
  out.push_back(big_chunks);

  WhatIfScenario batching;
  batching.name = "batch 4 chunks/request";
  batching.service.batch_chunks = 4;
  batching.wire_chunk = 4 * kChunkSize;
  out.push_back(batching);

  WhatIfScenario scaling;
  scaling.name = "server window scaling (1MB rwnd)";
  scaling.service.server_window_scaling = true;
  out.push_back(scaling);

  WhatIfScenario no_ssai;
  no_ssai.name = "SSAI disabled (ideal: lossless burst)";
  no_ssai.service.ssai_enabled = false;
  out.push_back(no_ssai);

  // §4.3's caveat: without SSAI the post-idle burst risks tail loss and a
  // retransmission timeout.
  WhatIfScenario no_ssai_lossy;
  no_ssai_lossy.name = "SSAI disabled, 25% post-idle burst loss";
  no_ssai_lossy.service.ssai_enabled = false;
  no_ssai_lossy.service.post_idle_burst_loss_prob = 0.25;
  out.push_back(no_ssai_lossy);

  // The paper's recommended alternative [28]: keep cwnd, pace the restart.
  WhatIfScenario pacing;
  pacing.name = "pacing after idle (paper's recommendation)";
  pacing.service.ssai_enabled = false;
  pacing.service.pace_after_idle = true;
  pacing.service.post_idle_burst_loss_prob = 0.25;
  out.push_back(pacing);

  WhatIfScenario combined;
  combined.name = "2MB chunks + window scaling";
  combined.service.chunk_size = 2 * kMiB;
  combined.wire_chunk = 2 * kMiB;
  combined.service.server_window_scaling = true;
  out.push_back(combined);

  return out;
}

std::vector<WhatIfScenario> ChunkSizeSweep() {
  std::vector<WhatIfScenario> out;
  for (Bytes kb : {256, 512, 1024, 1536, 2048, 4096}) {
    WhatIfScenario s;
    s.name = std::to_string(kb) + "KB chunks";
    s.service.chunk_size = kb * kKiB;
    s.wire_chunk = kb * kKiB;
    out.push_back(s);
  }
  return out;
}

std::vector<WhatIfOutcome> RunWhatIf(
    const WhatIfConfig& config, std::span<const WhatIfScenario> scenarios) {
  std::vector<WhatIfOutcome> outcomes;
  outcomes.reserve(scenarios.size());

  ThreadPool pool(config.threads);
  for (const WhatIfScenario& scenario : scenarios) {
    const cloud::StorageService service(scenario.service);
    // Flow i is seeded config.seed + i regardless of which worker runs it,
    // and the reduction below walks flows in index order, so the outcome is
    // identical at every thread count. (Same seed base across scenarios:
    // each flow i sees identical device draws, so differences are
    // attributable to the knobs alone.)
    std::vector<tcp::FlowResult> flows(config.flows);
    ParallelFor(pool, config.flows, [&](std::size_t i) {
      flows[i] = service.SimulateFlow(config.device, config.direction,
                                      config.file_size, config.seed + i);
    });

    std::vector<double> file_times;
    std::vector<double> chunk_ttrans;
    std::size_t gaps = 0;
    std::size_t restarts = 0;
    std::uint64_t timeouts = 0;
    for (const tcp::FlowResult& flow : flows) {
      file_times.push_back(flow.duration);
      timeouts += flow.timeouts;
      for (const auto& c : flow.chunks) {
        chunk_ttrans.push_back(c.transfer_time);
        if (c.idle_before > 0) {
          ++gaps;
          if (c.restarted) ++restarts;
        }
      }
    }

    WhatIfOutcome o;
    o.name = scenario.name;
    o.median_file_time = Percentile(file_times, 50);
    double sum = 0;
    for (double t : file_times) sum += t;
    o.mean_file_time = sum / static_cast<double>(file_times.size());
    o.median_chunk_ttran = Percentile(chunk_ttrans, 50);
    o.restart_share =
        gaps ? static_cast<double>(restarts) / static_cast<double>(gaps) : 0;
    o.timeouts_per_flow =
        static_cast<double>(timeouts) / static_cast<double>(config.flows);
    o.goodput_mbps = static_cast<double>(config.file_size) * 8.0 / 1e6 /
                     o.median_file_time;
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

ConnectionStrategyOutcome CompareConnectionStrategies(
    const ConnectionStrategyConfig& config) {
  MCLOUD_REQUIRE(config.files >= 1, "need at least one file");
  MCLOUD_REQUIRE(config.trials >= 1, "need at least one trial");

  const cloud::ClientBehavior client = cloud::BehaviorFor(config.device);
  // Each trial owns its Rng(seed + t), so trials parallelize with the same
  // index-ordered reduction determinism as RunWhatIf.
  struct Trial {
    double per_file_time = 0;
    double reused_time = 0;
    std::uint64_t per_file_restarts = 0;
    std::uint64_t reused_restarts = 0;
  };
  std::vector<Trial> trials(config.trials);
  ThreadPool pool(config.threads);
  ParallelFor(pool, config.trials, [&](std::size_t t) {
    Rng rng(config.seed + t);
    const Seconds rtt = cloud::MobileRttSpec().Sample(rng);
    const double bw = client.uplink_bps.Sample(rng);

    tcp::FlowConfig fc;
    fc.rtt = rtt;
    fc.bandwidth_bps = bw;
    fc.sender_window = 64 * kKiB;  // the front-end's advertisement

    tcp::StallModel stall;
    stall.block = client.stall_block;
    if (stall.block > 0) {
      stall.sample = [spec = client.stall_duration](Rng& r) {
        return spec.Sample(r);
      };
    }
    const cloud::ServerBehavior server;
    const tcp::DurationSampler tsrv = [spec = server.tsrv](Rng& r) {
      return spec.Sample(r);
    };
    const tcp::DurationSampler tclt = [spec = client.store_tclt](Rng& r) {
      return spec.Sample(r);
    };

    const std::vector<Bytes> one_file =
        tcp::SplitIntoChunks(config.file_size, kChunkSize);
    const tcp::FlowSimulator sim(fc);

    // (a) Fresh connection per file: each flow pays the handshake and
    // starts from the initial window; the user gap between files costs
    // wall-clock but no TCP state.
    {
      Rng flow_rng = rng.Fork(1);
      Seconds total = 0;
      std::uint64_t restarts = 0;
      for (std::size_t f = 0; f < config.files; ++f) {
        const auto result =
            sim.Run(one_file, tsrv, tclt, stall, flow_rng);
        total += result.duration + config.inter_file_gap;
        restarts += result.restarts;
      }
      trials[t].per_file_time = total;
      trials[t].per_file_restarts = restarts;
    }

    // (b) One reused connection: chunks of all files concatenate onto the
    // connection; at each file boundary the T_clt sampler returns the user
    // gap, which sits on the connection as TCP idle.
    {
      Rng flow_rng = rng.Fork(1);
      std::vector<Bytes> chunks;
      std::vector<std::size_t> boundary;  // chunk index ending each file
      for (std::size_t f = 0; f < config.files; ++f) {
        chunks.insert(chunks.end(), one_file.begin(), one_file.end());
        boundary.push_back(chunks.size() - 1);
      }
      std::size_t next_chunk = 0;
      std::size_t next_boundary = 0;
      const tcp::DurationSampler tclt_with_gaps =
          [&](Rng& r) -> Seconds {
        const std::size_t idx = next_chunk++;
        if (next_boundary < boundary.size() &&
            idx == boundary[next_boundary]) {
          ++next_boundary;
          return config.inter_file_gap;  // user think time between files
        }
        return client.store_tclt.Sample(r);
      };
      const auto result =
          sim.Run(chunks, tsrv, tclt_with_gaps, stall, flow_rng);
      trials[t].reused_time = result.duration;
      trials[t].reused_restarts = result.restarts;
    }
  });

  std::vector<double> per_file_times;
  std::vector<double> reused_times;
  per_file_times.reserve(trials.size());
  reused_times.reserve(trials.size());
  double per_file_restarts = 0;
  double reused_restarts = 0;
  for (const Trial& t : trials) {
    per_file_times.push_back(t.per_file_time);
    reused_times.push_back(t.reused_time);
    per_file_restarts += static_cast<double>(t.per_file_restarts);
    reused_restarts += static_cast<double>(t.reused_restarts);
  }

  ConnectionStrategyOutcome out;
  out.per_file_median = Percentile(per_file_times, 50);
  out.reused_median = Percentile(reused_times, 50);
  out.per_file_restarts =
      per_file_restarts / static_cast<double>(config.trials);
  out.reused_restarts =
      reused_restarts / static_cast<double>(config.trials);
  return out;
}

}  // namespace mcloud::core
