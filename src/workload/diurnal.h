// Diurnal load pattern (§2.4, Fig 1): sessions concentrate in the evening
// with a surge around 11 PM, when devices are home on WiFi.
#pragma once

#include <array>

#include "util/rng.h"
#include "util/units.h"

namespace mcloud::workload {

class DiurnalPattern {
 public:
  /// `hour_weights` — relative session-start intensity per hour of day.
  explicit DiurnalPattern(const std::array<double, 24>& hour_weights);

  /// Sample a second-of-day (0 .. 86399) following the hourly intensity.
  [[nodiscard]] Seconds SampleSecondOfDay(Rng& rng) const;

  /// Normalized weight of one hour (sums to 1 over the day).
  [[nodiscard]] double HourShare(int hour) const;

  /// Hour with the maximum weight (the paper's 11 PM surge).
  [[nodiscard]] int PeakHour() const;

 private:
  std::array<double, 24> weights_;
  double total_ = 0;
};

}  // namespace mcloud::workload
