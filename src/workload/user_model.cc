#include "workload/user_model.h"

#include <algorithm>
#include <cmath>

#include "util/distributions.h"
#include "util/error.h"
#include "workload/calibration.h"

namespace mcloud::workload {

PopulationBuilder::PopulationBuilder(const PopulationConfig& config,
                                     const ModelParams& model)
    : config_(config), model_(model) {
  MCLOUD_REQUIRE(config.mobile_users > 0, "need at least one mobile user");
  MCLOUD_REQUIRE(config.days >= 1, "need at least one day");
  MCLOUD_REQUIRE(config.android_share >= 0 && config.android_share <= 1,
                 "android share must be a probability");
}

std::uint64_t PopulationBuilder::SampleActivityAtLeastOne(Rng& rng, double x0,
                                                          double c) {
  const StretchedExponential se(x0, c);
  // X >= 1  ⇔  U <= CCDF(1); sample U in (0, CCDF(1)] and invert.
  const double cap = se.Ccdf(1.0);
  double u = rng.Uniform() * cap;
  while (u <= 0.0) u = rng.Uniform() * cap;
  const double x = se.Quantile(u);
  return static_cast<std::uint64_t>(std::max(1.0, std::floor(x)));
}

paper::UserClass PopulationBuilder::SampleClass(
    Rng& rng, bool mobile_only, bool uses_pc,
    std::size_t mobile_devices) const {
  // Input (intent) shares, pre-compensated for occasional→upload/download
  // volume spillover (see calibration.h). Profiles: mobile-only,
  // mobile&PC (mobile user that also uses a PC), PC-only (no mobile device).
  const bool mobile_and_pc = !mobile_only && mobile_devices > 0;
  (void)uses_pc;
  const auto& shares = mobile_only     ? model_.input_shares_mobile_only
                       : mobile_and_pc ? model_.input_shares_mobile_pc
                                       : model_.input_shares_pc_only;
  double occasional = shares[0];
  double upload = shares[1];
  double download = shares[2];
  if (mobile_only && mobile_devices > 1) {
    // Cross-device synchronization pulls multi-device users away from the
    // pure-upload pattern (Fig 7b); the freed mass lands on mixed (via the
    // 1-minus-sum below) and download.
    upload -= model_.multi_device_upload_shift;
    download += model_.multi_device_to_download;
  }
  const double mixed = 1.0 - upload - download - occasional;
  const std::array<double, 4> weights = {occasional, upload, download, mixed};
  switch (rng.PickWeighted(weights)) {
    case 0:
      return paper::UserClass::kOccasional;
    case 1:
      return paper::UserClass::kUploadOnly;
    case 2:
      return paper::UserClass::kDownloadOnly;
    default:
      return paper::UserClass::kMixed;
  }
}

void PopulationBuilder::BuildOne(std::uint64_t population_root, std::size_t i,
                                 UserProfile& u) const {
  const bool is_mobile = i < config_.mobile_users;
  u.user_id = static_cast<std::uint64_t>(i) + 1;
  // Stateless per-user stream: the profile of user k depends only on
  // (population_root, k), never on how many other users exist or on which
  // shard samples it.
  Rng rng = Rng::ForStream(population_root, u.user_id);

  if (is_mobile) {
    const std::size_t devices =
        rng.PickWeighted(model_.device_count_weights) + 1;
    for (std::size_t d = 0; d < devices; ++d) {
      DeviceInfo dev;
      // Placeholder id; Build assigns dense ids in a serial pass.
      dev.device_id = 0;
      dev.type = rng.Bernoulli(config_.android_share) ? DeviceType::kAndroid
                                                      : DeviceType::kIos;
      u.mobile_devices.push_back(dev);
    }
    u.uses_pc = rng.Bernoulli(config_.mobile_and_pc_share);
  } else {
    u.uses_pc = true;  // PC-only
  }

  u.usage_class = SampleClass(rng, u.IsMobileOnly(), u.uses_pc,
                              u.mobile_devices.size());

  switch (u.usage_class) {
    case paper::UserClass::kUploadOnly:
      u.store_files = SampleActivityAtLeastOne(rng, model_.store_activity_x0,
                                               model_.store_activity_c);
      break;
    case paper::UserClass::kDownloadOnly:
      u.retrieve_files = SampleActivityAtLeastOne(
          rng, model_.retrieve_activity_x0, model_.retrieve_activity_c);
      break;
    case paper::UserClass::kMixed:
      u.store_files = SampleActivityAtLeastOne(rng, model_.store_activity_x0,
                                               model_.store_activity_c);
      u.retrieve_files = SampleActivityAtLeastOne(
          rng, model_.retrieve_activity_x0 * cal::kMixedRetrieveScale,
          model_.retrieve_activity_c);
      break;
    case paper::UserClass::kOccasional:
      // Occasional is a *volume* class (< 1 MB total): operation counts
      // follow the same SE laws as everyone else — only payloads differ —
      // keeping the population's Fig 10 rank curve one clean SE law.
      u.store_files = SampleActivityAtLeastOne(rng, model_.store_activity_x0,
                                               model_.store_activity_c);
      if (rng.Bernoulli(cal::kOccasionalRetrieveProb)) {
        u.retrieve_files = SampleActivityAtLeastOne(
            rng, model_.retrieve_activity_x0, model_.retrieve_activity_c);
      }
      break;
  }

  // Heavy users are, in practice, always engaged — someone moving dozens
  // of files a week does not vanish after one day.
  const bool heavy = u.store_files + u.retrieve_files > 25;

  // Engagement (Fig 8): single-device users are the least likely to
  // return; multiple devices or a PC client imply synchronization use and
  // near-certain returns.
  double engaged_p;
  if (u.uses_pc && u.IsMobileUser()) {
    engaged_p = model_.engaged_mobile_pc;
  } else if (u.mobile_devices.size() > 1) {
    engaged_p = model_.engaged_multi_device;
  } else {
    engaged_p = model_.engaged_single_device;
  }
  u.engaged = heavy || rng.Bernoulli(engaged_p);
  if (model_.UniformDayWeights()) {
    // Legacy path — must stay UniformInt (one raw u64, Lemire) so the
    // default ModelParams reproduces the historical stream exactly.
    u.first_active_day = static_cast<int>(
        rng.UniformInt(static_cast<std::uint64_t>(config_.days)));
  } else {
    // Weighted first-active day: cycle the 7-entry week over the trace days.
    std::vector<double> w(static_cast<std::size_t>(config_.days));
    for (std::size_t d = 0; d < w.size(); ++d)
      w[d] = model_.day_weights[d % 7];
    u.first_active_day = static_cast<int>(rng.PickWeighted(w));
  }
}

std::vector<UserProfile> PopulationBuilder::Build(Rng& rng,
                                                  ThreadPool* pool) const {
  // One root draw regardless of population size: adding users cannot shift
  // any existing user's stream.
  const std::uint64_t population_root = rng.NextU64();
  const std::size_t total = config_.mobile_users + config_.pc_only_users;
  std::vector<UserProfile> users(total);

  if (pool != nullptr) {
    ParallelFor(*pool, total, [&](std::size_t i) {
      BuildOne(population_root, i, users[i]);
    });
  } else {
    for (std::size_t i = 0; i < total; ++i)
      BuildOne(population_root, i, users[i]);
  }

  // Dense unique device ids, assigned in user order. Serial, but it touches
  // each device exactly once; the sampling above is the heavy part.
  std::uint64_t next_device_id = 1;
  for (auto& u : users) {
    for (auto& d : u.mobile_devices) d.device_id = next_device_id++;
  }
  return users;
}

}  // namespace mcloud::workload
