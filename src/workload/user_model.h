// The user population model (§3.2): devices, usage class, weekly activity
// budget, and engagement profile per user.
//
// Generation order mirrors the paper's structure: a user's *class* (Table 3)
// is sampled from the column matching their device profile, and their weekly
// store/retrieve file counts are drawn from the published stretched-
// exponential activity laws conditioned on the class. Conditioning an SE
// sample on X >= 1 keeps the rank plot linear in log–y^c space with the same
// slope, so re-fitting the generated population recovers the paper's Fig 10
// parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "model/paper_params.h"
#include "trace/log_record.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "workload/model_params.h"

namespace mcloud::workload {

struct DeviceInfo {
  std::uint64_t device_id = 0;
  DeviceType type = DeviceType::kAndroid;
};

struct UserProfile {
  std::uint64_t user_id = 0;
  std::vector<DeviceInfo> mobile_devices;  ///< empty for PC-only users
  bool uses_pc = false;
  paper::UserClass usage_class = paper::UserClass::kOccasional;
  /// Weekly file budgets (0 when the class forbids the direction).
  std::uint64_t store_files = 0;
  std::uint64_t retrieve_files = 0;
  /// Engagement: non-engaged users are active on their first day only.
  bool engaged = false;
  int first_active_day = 0;

  [[nodiscard]] bool IsMobileUser() const { return !mobile_devices.empty(); }
  [[nodiscard]] bool IsMobileOnly() const {
    return IsMobileUser() && !uses_pc;
  }
};

struct PopulationConfig {
  std::size_t mobile_users = 20'000;
  std::size_t pc_only_users = 8'000;
  int days = 7;
  double android_share = paper::kAndroidShare;
  double mobile_and_pc_share = paper::kMobileAndPcShare;
};

/// Builds the user population. Device IDs and user IDs are dense and unique;
/// pass the result through trace::Anonymizer if pseudonymous IDs are wanted.
///
/// Each user's profile is drawn from a stateless per-user stream keyed on
/// (root draw, user_id) — see Rng::ForStream — so appending users to the
/// population never perturbs the profiles of existing user ids, and profile
/// sampling can be sharded across a thread pool with no change in output.
class PopulationBuilder {
 public:
  /// `model` — runtime model parameters; the default reproduces the legacy
  /// compile-time calibration byte for byte.
  explicit PopulationBuilder(const PopulationConfig& config,
                             const ModelParams& model = ModelParams{});

  /// `pool` — optional thread pool for sharding profile sampling; the
  /// result is identical with any pool size (and with no pool at all).
  [[nodiscard]] std::vector<UserProfile> Build(Rng& rng,
                                               ThreadPool* pool = nullptr)
      const;

  /// Sample a weekly activity count from the stretched-exponential law with
  /// scale `x0` and stretch `c`, conditioned on the result being >= 1.
  [[nodiscard]] static std::uint64_t SampleActivityAtLeastOne(Rng& rng,
                                                              double x0,
                                                              double c);

 private:
  [[nodiscard]] paper::UserClass SampleClass(Rng& rng, bool mobile_only,
                                             bool uses_pc,
                                             std::size_t mobile_devices) const;
  /// Sample the full profile of user index `i` from its own stream.
  void BuildOne(std::uint64_t population_root, std::size_t i,
                UserProfile& u) const;

  PopulationConfig config_;
  ModelParams model_;
};

}  // namespace mcloud::workload
