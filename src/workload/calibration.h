// Generator calibration constants that are NOT directly printed in the paper.
//
// The paper publishes its fitted models (Table 2, Fig 3, Fig 10, Table 3);
// everything else about the generating process has to be chosen so that the
// published aggregates emerge. Each constant below documents which published
// observation pins it down. Keep this header the single place where such
// judgement calls live — the directly-published numbers stay in
// model/paper_params.h.
#pragma once

#include <array>

#include "model/paper_params.h"
#include "util/units.h"

namespace mcloud::workload::cal {

// ---------------------------------------------------------------------------
// Device mix
// ---------------------------------------------------------------------------
/// Distribution of the number of mobile devices per user. Pinned by Fig 7b /
/// Fig 8 splitting users into 1, >1, >2 device groups with meaningful mass
/// in each; most users own a single device.
inline constexpr std::array<double, 3> kMobileDeviceCountWeights = {
    0.78, 0.16, 0.06};  // 1, 2, 3 devices

/// Multi-device mobile-only users synchronize across devices, shifting the
/// class mix away from pure upload toward mixed/download (Fig 7b shows a
/// significant reduction in storage-dominated users with multiple devices).
inline constexpr double kMultiDeviceUploadShift = 0.10;  // from upload-only
inline constexpr double kMultiDeviceToDownload = 0.05;   // ... to download
// (the remainder of the shifted mass lands on the mixed class)

/// Session→device assignment for mobile&PC users: stores originate from the
/// phone (the camera is there); retrievals often happen on the PC (§3.2.2:
/// "users are more likely to sync data uploaded by mobile devices from
/// PCs").
inline constexpr double kStoreFromMobileShare = 0.78;
/// Retrieval placement is conditioned on session size: bulk pulls are the
/// PC sync client downloading a batch, while one-off retrievals are a user
/// opening a file on the phone. This is what lets the mobile trace carry
/// ~30% retrieve-only *sessions* (§3.1.1) while keeping mobile retrieved
/// *files* below half the stored files (Fig 2): the file mass of large
/// pulls lands on the PC.
inline constexpr double kRetrieveFromPcShareBulk = 0.62;   // >= 3 files
inline constexpr double kRetrieveFromPcShareSmall = 0.04;  // 1-2 files

// ---------------------------------------------------------------------------
// Per-user weekly activity (drives Fig 10 and Table 3)
// ---------------------------------------------------------------------------
/// Scale x0 of the stretched-exponential store-activity law. Derived from
/// the paper's fit: a = x0^c with a = 0.448, c = 0.2 ⇒ x0 = 0.448^5 ≈ 0.018.
/// Sampling X ~ SE(x0, c) conditioned on X >= 1 preserves the linearity of
/// the rank plot in log–y^c space with the *same* slope a, so the refit in
/// bench_fig10 recovers the published a and c (b depends on population size).
inline constexpr double kStoreActivityX0 = 0.01806;
inline constexpr double kStoreActivityC = paper::kStoreActivitySe.c;

/// Retrieve activity: a = 0.322, c = 0.15 ⇒ x0 = 0.322^(1/0.15) ≈ 5.2e-4.
inline constexpr double kRetrieveActivityX0 = 5.24e-4;
inline constexpr double kRetrieveActivityC = paper::kRetrieveActivitySe.c;

/// Mixed-usage users retrieve less than download-only users; this scale
/// factor on x0 makes download-only users carry ~84.5% of retrieval volume
/// (Table 3) while mixed users carry the rest.
inline constexpr double kMixedRetrieveScale = 1.0;

/// Occasional-*intent* users move small objects; operation counts follow the
/// exact same stretched-exponential laws as every other class, so the
/// population's Fig 10 rank curve remains one clean SE law (any
/// class-specific count distribution measurably bends the curve and biases
/// the refit of the stretch factor). Their per-session average payload is a
/// *rejection-truncated draw from the Table 2 µ1 = 1.5 MB exponential* on
/// [kOccasionalMinFileMB, kOccasionalMaxFileMB]: below the cut-off their
/// density is proportional to the main component's, so the Fig 6 EM refit
/// blends them into µ1 instead of fabricating a small-payload mode. Users
/// whose sampled count × payload exceeds 1 MB simply *classify* as
/// upload/download users in the measured Table 3, and the input shares below
/// pre-compensate for that spillover.
inline constexpr double kOccasionalMinFileMB = 0.05;
inline constexpr double kOccasionalMaxFileMB = 0.90;
/// Weekly volume budget an occasional user aims under; the per-file cap is
/// kOccasionalBudgetMB / (op budget), clamped to the range above.
inline constexpr double kOccasionalBudgetMB = 1.2;
/// Probability an occasional-intent user also tries retrieval.
inline constexpr double kOccasionalRetrieveProb = 0.10;

/// Input (intent) class shares per device profile, ordered
/// {occasional, upload, download} (mixed = remainder). These differ from the
/// Table 3 *measured* targets because a large minority of occasional-intent
/// users spill over the 1 MB volume boundary into the upload/download
/// classes; the inputs are inflated accordingly so the measured shares land
/// on Table 3.
inline constexpr std::array<double, 3> kInputSharesMobileOnly = {
    0.205, 0.580, 0.165};
inline constexpr std::array<double, 3> kInputSharesMobilePc = {
    0.200, 0.550, 0.130};
inline constexpr std::array<double, 3> kInputSharesPcOnly = {
    0.420, 0.250, 0.160};

// ---------------------------------------------------------------------------
// Sessions (drives Fig 4, Fig 5, §3.1)
// ---------------------------------------------------------------------------
/// File operations per session: mixture chosen so that ~40% of sessions have
/// exactly one operation and ~10% exceed 20 (Fig 5a).
///   w.p. kSingleOpShare            -> 1 op
///   w.p. kFewOpsShare              -> 2 + Geometric(kFewOpsMean) ops
///   w.p. kManyOpsShare             -> 20 + Exponential(kManyOpsTailMean)
inline constexpr double kSingleOpShare = 0.26;
inline constexpr double kFewOpsShare = 0.61;
inline constexpr double kManyOpsShare = 0.13;
inline constexpr double kFewOpsMean = 4.0;
inline constexpr double kManyOpsTailMean = 18.0;

/// Retrieval sessions have fewer operations on average (Fig 5a retrieve-only
/// curve sits above store-only at low counts).
inline constexpr double kRetrieveSingleOpShare = 0.88;
inline constexpr double kRetrieveFewOpsShare = 0.10;
inline constexpr double kRetrieveManyOpsShare = 0.02;

/// Probability that a mixed-class user's session interleaves both store and
/// retrieve operations. Pinned by the 2% share of mixed sessions (§3.1.1)
/// given ~7-18% mixed-class users.
inline constexpr double kMixedSessionProbability = 0.36;

/// Retrieve-session file-size component weights conditioned on the number of
/// files n in the session (Table 2 retrieve row is the session-weighted
/// aggregate; Fig 5c pins the negative size–count correlation: single-file
/// sessions average ~70 MB while many-file sessions sync small items).
/// Rows: n <= 2, 3 <= n <= 9, n >= 10. Columns: Table 2 components 1..3.
inline constexpr std::array<std::array<double, 3>, 3>
    kRetrieveSizeWeightsByCount = {{
        {0.34, 0.29, 0.37},
        {0.55, 0.30, 0.15},
        {0.85, 0.13, 0.02},
    }};

/// Store-session size-component weights, conditioned on op count.
/// Multi-file store sessions are photo batches and draw almost exclusively
/// from the 1.5 MB component — that is what keeps the *average* session
/// volume growing at ~1.5-2 MB per file (Fig 5b). Single-file sessions
/// carry the video tail. The weights solve so the session-weighted
/// aggregate still matches Table 2's store row (0.91/0.07/0.02) given the
/// ~48% single-op session share.
inline constexpr std::size_t kBatchOpsThreshold = 10;  // many-ops base
inline constexpr std::array<double, 3> kStoreSizeWeightsSingle = {
    0.845, 0.119, 0.036};  // 1 file
inline constexpr std::array<double, 3> kStoreSizeWeightsMulti = {
    0.970, 0.025, 0.005};  // >= 2 files

/// Within a session all files share the session's size class; individual
/// file sizes jitter around the class draw by this lognormal sigma, so a
/// photo-backup session contains similar-but-not-identical JPEG sizes.
inline constexpr double kFileSizeJitterSigma = 0.20;

/// Intra-session operation gaps (log10 seconds). Most gaps are short
/// multi-select gaps — the app issues the operations of one user gesture
/// back to back — with a minority of longer think-time gaps; batch sessions
/// (> 10 ops) issue requests programmatically. Together these reproduce the
/// Fig 4 burstiness (80% of multi-op sessions spend < 10% of the session
/// operating; > 20-op sessions < 3%) while keeping the Fig 3 intra-session
/// mixture component in the seconds range. Known deviation: the paper's
/// intra-session component mean is ~10 s; at 1-second log resolution,
/// gaps that long are incompatible with Fig 4's burstiness for short
/// sessions, so this generator sits at the ~1-2 s end (see EXPERIMENTS.md).
inline constexpr double kQuickGapShare = 0.93;
inline constexpr double kQuickGapMeanLog10 = -0.50;  // ~0.32 s
inline constexpr double kQuickGapStddevLog10 = 0.35;
inline constexpr double kThinkGapMeanLog10 = 1.55;   // ~35 s
inline constexpr double kThinkGapStddevLog10 = 0.50;
inline constexpr std::size_t kBatchGapOpsThreshold = 10;
inline constexpr double kBatchGapMeanLog10 = -1.20;  // ~0.06 s
inline constexpr double kBatchGapStddevLog10 = 0.30;
/// Truncation below τ so an in-session gap can never split the session.
inline constexpr Seconds kMaxIntraSessionGap = 0.5 * kHour;

// ---------------------------------------------------------------------------
// Engagement (drives Fig 8, Fig 9)
// ---------------------------------------------------------------------------
/// P(engaged) by profile: single-device ≈ 50% never return in the week,
/// multi-device < 20%, mobile&PC even fewer (Fig 8).
inline constexpr double kEngagedSingleDevice = 0.58;
inline constexpr double kEngagedMultiDevice = 0.82;
inline constexpr double kEngagedMobilePc = 0.86;
/// P(an engaged user is active on any given later day).
inline constexpr double kEngagedDailyActive = 0.62;
/// Mild decay of daily-active probability per elapsed day.
inline constexpr double kEngagedDailyDecay = 0.97;

/// Mobile&PC users sync fresh uploads from their PC: probability that a
/// mobile store session triggers a same-day PC retrieval session (Fig 9's
/// elevated day-0 retrieval for mobile&PC users).
inline constexpr double kPcSyncAfterUpload = 0.12;


// ---------------------------------------------------------------------------
// Diurnal shape (drives Fig 1)
// ---------------------------------------------------------------------------
/// Relative session-start weight per hour of day. Shape: quiet early
/// morning, daytime plateau, evening ramp to the 11 PM surge when devices
/// reach home WiFi (§2.4), sharp fall after midnight.
inline constexpr std::array<double, 24> kHourOfDayWeights = {
    1.8, 0.9, 0.5, 0.3, 0.25, 0.3,   // 00-05
    0.6, 1.2, 2.0, 2.6, 2.9, 3.1,    // 06-11
    3.3, 3.0, 2.8, 2.7, 2.8, 3.0,    // 12-17
    3.4, 3.8, 4.3, 5.0, 6.2, 7.5};   // 18-23

// ---------------------------------------------------------------------------
// Fast-path record timing (fields of Table 1 in generated logs)
// ---------------------------------------------------------------------------
/// Per-connection RTT: lognormal with median 100 ms (Fig 14) and a heavy
/// tail reaching seconds (mobile networks).
inline constexpr double kRttMedian = paper::kMedianRtt;
inline constexpr double kRttSigma = 0.55;

/// T_srv: lognormal, median ~100 ms regardless of device type (Fig 16a/b).
inline constexpr double kTsrvMedian = paper::kMedianServerTime;
inline constexpr double kTsrvSigma = 0.45;

/// Fraction of requests arriving via HTTP proxies (excluded from §4).
inline constexpr double kProxiedShare = 0.06;

/// Effective client uplink/downlink application throughput used by the fast
/// log emitter to spread chunk requests over a session (device-conditioned;
/// the §4 benches use the real TCP simulator instead). Bytes per second.
inline constexpr double kUplinkBps_Ios = 340e3;
inline constexpr double kUplinkBps_Android = 130e3;
inline constexpr double kDownlinkBps_Ios = 520e3;
inline constexpr double kDownlinkBps_Android = 300e3;
inline constexpr double kLinkBps_Pc = 900e3;

}  // namespace mcloud::workload::cal
