// Runtime model parameters for the workload generator.
//
// Historically every knob of the generating process was a compile-time
// constant (workload/calibration.h for judgement calls, model/paper_params.h
// for published numbers). The scenario layer (src/scenario/) needs to swap
// whole worlds in at runtime — a photo-backup-heavy population, an
// enterprise weekday diurnal — without recompiling, so the knobs a
// WorkloadSpec may override live here as a plain struct whose default member
// initializers are *exactly* the calibration constants.
//
// Byte-identity contract: `ModelParams{}` reproduces the historical trace
// bit for bit. Every sampling site reads these fields the same way it read
// the constants (same draw counts, same arithmetic), and the one genuinely
// new axis — day-of-week weighting — is guarded so the uniform default takes
// the exact legacy code path (see PopulationBuilder::BuildOne and
// SessionModel::ActiveDays).
#pragma once

#include <array>

#include "model/paper_params.h"
#include "workload/calibration.h"

namespace mcloud::workload {

struct ModelParams {
  // --- Device mix (Fig 7b / Fig 8) ---
  std::array<double, 3> device_count_weights = cal::kMobileDeviceCountWeights;
  double multi_device_upload_shift = cal::kMultiDeviceUploadShift;
  double multi_device_to_download = cal::kMultiDeviceToDownload;

  // --- Usage-class intent shares {occasional, upload, download} per device
  // profile (Table 3 inputs) ---
  std::array<double, 3> input_shares_mobile_only = cal::kInputSharesMobileOnly;
  std::array<double, 3> input_shares_mobile_pc = cal::kInputSharesMobilePc;
  std::array<double, 3> input_shares_pc_only = cal::kInputSharesPcOnly;

  // --- Weekly activity laws (Fig 10 / Table 3) ---
  double store_activity_x0 = cal::kStoreActivityX0;
  double store_activity_c = cal::kStoreActivityC;
  double retrieve_activity_x0 = cal::kRetrieveActivityX0;
  double retrieve_activity_c = cal::kRetrieveActivityC;

  // --- Engagement (Fig 8 / Fig 9) ---
  double engaged_single_device = cal::kEngagedSingleDevice;
  double engaged_multi_device = cal::kEngagedMultiDevice;
  double engaged_mobile_pc = cal::kEngagedMobilePc;
  double engaged_daily_active = cal::kEngagedDailyActive;
  double engaged_daily_decay = cal::kEngagedDailyDecay;
  double pc_sync_after_upload = cal::kPcSyncAfterUpload;

  // --- Session op-count mixture (Fig 5a) ---
  double single_op_share = cal::kSingleOpShare;
  double few_ops_share = cal::kFewOpsShare;
  double few_ops_mean = cal::kFewOpsMean;
  double many_ops_tail_mean = cal::kManyOpsTailMean;
  double retrieve_single_op_share = cal::kRetrieveSingleOpShare;
  double retrieve_few_ops_share = cal::kRetrieveFewOpsShare;
  double mixed_session_probability = cal::kMixedSessionProbability;

  // --- Per-session average file-size mixtures (Table 2) and the
  // count-conditioned component weights (Fig 5b/5c) ---
  paper::MixtureExpParams store_file_size = paper::kStoreFileSizeParams;
  paper::MixtureExpParams retrieve_file_size = paper::kRetrieveFileSizeParams;
  std::array<double, 3> store_size_weights_single =
      cal::kStoreSizeWeightsSingle;
  std::array<double, 3> store_size_weights_multi = cal::kStoreSizeWeightsMulti;
  std::array<std::array<double, 3>, 3> retrieve_size_weights_by_count =
      cal::kRetrieveSizeWeightsByCount;

  // --- Intra-session burstiness (Fig 3 / Fig 4), log10 seconds ---
  double quick_gap_share = cal::kQuickGapShare;
  double quick_gap_mean_log10 = cal::kQuickGapMeanLog10;
  double quick_gap_stddev_log10 = cal::kQuickGapStddevLog10;
  double think_gap_mean_log10 = cal::kThinkGapMeanLog10;
  double think_gap_stddev_log10 = cal::kThinkGapStddevLog10;
  double batch_gap_mean_log10 = cal::kBatchGapMeanLog10;
  double batch_gap_stddev_log10 = cal::kBatchGapStddevLog10;

  // --- Diurnal shape (Fig 1) ---
  std::array<double, 24> hour_weights = cal::kHourOfDayWeights;
  /// Relative session weight per day of week, indexed day_of_trace % 7.
  /// Uniform by default; a weekday-diurnal spec (enterprise-sync) lowers the
  /// weekend entries. Uniform weights take the legacy sampling path exactly.
  std::array<double, 7> day_weights = {1, 1, 1, 1, 1, 1, 1};

  /// True when every day carries the same weight — the guard that keeps the
  /// default draw sequence identical to the pre-spec generator.
  [[nodiscard]] bool UniformDayWeights() const {
    for (double w : day_weights) {
      if (w != day_weights[0]) return false;
    }
    return true;
  }
  [[nodiscard]] double MaxDayWeight() const {
    double m = day_weights[0];
    for (double w : day_weights) m = w > m ? w : m;
    return m;
  }
};

}  // namespace mcloud::workload
