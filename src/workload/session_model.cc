#include "workload/session_model.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "workload/calibration.h"

namespace mcloud::workload {
namespace {

/// Sample an intra-session gap (seconds) given the session's op count.
Seconds SampleOpGap(Rng& rng, std::size_t session_ops,
                    const ModelParams& model) {
  double log10_gap;
  if (session_ops > cal::kBatchGapOpsThreshold) {
    // Batch backup: the app issues operation requests programmatically.
    log10_gap = rng.Normal(model.batch_gap_mean_log10,
                           model.batch_gap_stddev_log10);
  } else if (rng.Bernoulli(model.quick_gap_share)) {
    // Multi-select: several files chosen in one gesture.
    log10_gap =
        rng.Normal(model.quick_gap_mean_log10, model.quick_gap_stddev_log10);
  } else {
    // Think time between separate gestures.
    log10_gap =
        rng.Normal(model.think_gap_mean_log10, model.think_gap_stddev_log10);
  }
  return std::min(std::pow(10.0, log10_gap), cal::kMaxIntraSessionGap);
}

/// Pick the Table 2 size component for a session.
std::size_t SampleSizeComponent(Rng& rng, Direction direction,
                                std::size_t op_count,
                                const ModelParams& model) {
  if (direction == Direction::kStore) {
    const auto& w = (op_count == 1) ? model.store_size_weights_single
                                    : model.store_size_weights_multi;
    return rng.PickWeighted(w);
  }
  const std::size_t row = (op_count <= 2) ? 0 : (op_count <= 9) ? 1 : 2;
  return rng.PickWeighted(model.retrieve_size_weights_by_count[row]);
}

/// Claim the next pooled SessionPlan slot: ops cleared (capacity kept), POD
/// fields left stale — every caller assigns them all.
SessionPlan& NextSlot(PlanScratch& scratch) {
  if (scratch.used == scratch.pool.size()) {
    scratch.pool.emplace_back();
    ++scratch.slot_growth;
  }
  SessionPlan& slot = scratch.pool[scratch.used++];
  slot.ops.clear();
  return slot;
}

}  // namespace

SessionModel::SessionModel(const SessionModelConfig& config,
                           const DiurnalPattern& diurnal)
    : config_(config), diurnal_(diurnal) {
  MCLOUD_REQUIRE(config.days >= 1, "need at least one day");
}

std::size_t SessionModel::SampleOpCount(Rng& rng, Direction direction,
                                        const ModelParams& model) {
  const bool store = direction == Direction::kStore;
  const double single =
      store ? model.single_op_share : model.retrieve_single_op_share;
  const double few = store ? model.few_ops_share : model.retrieve_few_ops_share;
  const std::array<double, 3> weights = {
      single, few, 1.0 - single - few};
  switch (rng.PickWeighted(weights)) {
    case 0:
      return 1;
    case 1: {
      // 2 + geometric-ish spread up to ~15 files.
      const double extra = rng.ExponentialMean(model.few_ops_mean);
      return 2 + static_cast<std::size_t>(std::min(extra, 16.0));
    }
    default: {
      const double extra = rng.ExponentialMean(model.many_ops_tail_mean);
      return cal::kBatchOpsThreshold +
             static_cast<std::size_t>(std::min(extra, 200.0));
    }
  }
}

std::size_t SessionModel::SampleOpCount(Rng& rng, Direction direction) {
  static const ModelParams kDefault{};
  return SampleOpCount(rng, direction, kDefault);
}

Bytes SessionModel::SampleSessionAvgFileSize(Rng& rng, Direction direction,
                                             std::size_t op_count,
                                             const ModelParams& model) {
  const auto& params = (direction == Direction::kStore)
                           ? model.store_file_size
                           : model.retrieve_file_size;
  const std::size_t comp = SampleSizeComponent(rng, direction, op_count, model);
  const double mb = rng.ExponentialMean(params.means_mb[comp]);
  // Files below ~50 KB are unrealistic for the photo/video content the
  // service carries; floor the draw.
  return FromMB(std::max(mb, 0.05));
}

Bytes SessionModel::SampleSessionAvgFileSize(Rng& rng, Direction direction,
                                             std::size_t op_count) {
  static const ModelParams kDefault{};
  return SampleSessionAvgFileSize(rng, direction, op_count, kDefault);
}

void SessionModel::ActiveDaysInto(const UserProfile& user, Rng& rng,
                                  std::vector<int>& days) const {
  days.clear();
  days.push_back(user.first_active_day);
  if (user.engaged) {
    // Day-of-week scaling: w[d]/max(w) == 1.0 exactly when weights are
    // uniform, and Bernoulli consumes one draw regardless of p, so the
    // default ModelParams keeps the legacy stream byte for byte.
    const double max_w = config_.model.MaxDayWeight();
    double p = config_.model.engaged_daily_active;
    for (int d = user.first_active_day + 1; d < config_.days; ++d) {
      const double scale = config_.model.day_weights[d % 7] / max_w;
      if (rng.Bernoulli(p * scale)) days.push_back(d);
      p *= config_.model.engaged_daily_decay;
    }
  }
}

UnixSeconds SessionModel::SampleSessionStart(int day, Rng& rng) const {
  const Seconds second_of_day = diurnal_.SampleSecondOfDay(rng);
  return config_.trace_start +
         static_cast<UnixSeconds>(day) * static_cast<UnixSeconds>(kDay) +
         static_cast<UnixSeconds>(second_of_day);
}

void SessionModel::FillOps(SessionPlan& session, Direction direction,
                           std::size_t count, Bytes occasional_cap,
                           Rng& rng) const {
  Bytes max_file_size = 16 * kGiB;
  Bytes avg;
  if (occasional_cap > 0) {
    // Rejection-truncated draw from the Table 2 µ1 exponential (see
    // calibration.h): small payloads whose density matches the main
    // component's shape below the cut-off, capped per-file so the user's
    // weekly volume stays near the 1 MB class boundary.
    const double hi =
        std::min(cal::kOccasionalMaxFileMB, ToMB(occasional_cap));
    const double lo = std::min(cal::kOccasionalMinFileMB, hi / 2.0);
    double mb = 0;
    do {
      mb = rng.ExponentialMean(config_.model.store_file_size.means_mb[0]);
    } while (mb < lo || mb > hi);
    avg = FromMB(mb);
    max_file_size = FromMB(hi);
  } else {
    avg = SampleSessionAvgFileSize(rng, direction, count, config_.model);
  }
  Seconds offset =
      session.ops.empty()
          ? 0.0
          : session.ops.back().offset +
                SampleOpGap(rng, count + session.ops.size(), config_.model);
  for (std::size_t i = 0; i < count; ++i) {
    FileOp op;
    op.direction = direction;
    // Jitter individual files around the session's size class.
    const double jitter =
        rng.LogNormal(0.0, cal::kFileSizeJitterSigma);
    op.size = std::max<Bytes>(
        static_cast<Bytes>(static_cast<double>(avg) * jitter), 10 * kKiB);
    op.size = std::min(op.size, max_file_size);
    op.offset = offset;
    session.ops.push_back(op);
    offset += SampleOpGap(rng, count + session.ops.size(), config_.model);
  }
}

void SessionModel::PlanUserInto(const UserProfile& user, Rng& rng,
                                PlanScratch& scratch) const {
  scratch.used = 0;
  ActiveDaysInto(user, rng, scratch.active_days);
  const std::vector<int>& active_days = scratch.active_days;

  const bool occasional =
      user.usage_class == paper::UserClass::kOccasional;
  // Per-file ceiling for occasional users, shrinking with their op budget.
  const std::uint64_t budget =
      std::max<std::uint64_t>(1, user.store_files + user.retrieve_files);
  const Bytes occasional_cap =
      occasional ? FromMB(std::clamp(cal::kOccasionalBudgetMB /
                                         static_cast<double>(budget),
                                     0.06, cal::kOccasionalMaxFileMB))
                 : 0;

  // Split the weekly budgets into per-session op counts.
  std::vector<SessionDescriptor>& descriptors = scratch.descriptors;
  descriptors.clear();

  std::uint64_t store_left = user.store_files;
  std::uint64_t retrieve_left = user.retrieve_files;
  const bool mixed_user = user.usage_class == paper::UserClass::kMixed;


  // Engaged users spread their activity across the week (a photo backup per
  // evening), so cap a session's ops to leave at least one operation for
  // every not-yet-covered active day. Non-engaged users dump everything in
  // their few sessions.
  const auto cap_for_spread = [&](std::uint64_t left,
                                  std::size_t planned) -> std::uint64_t {
    if (!user.engaged) return left;
    const std::size_t days_uncovered =
        active_days.size() > planned ? active_days.size() - planned : 1;
    if (days_uncovered <= 1) return left;
    return std::max<std::uint64_t>(1, left - (days_uncovered - 1));
  };

  // Hard cap on session count: at most ~2 sessions per active day fit
  // without violating the same-day spacing below.
  const std::size_t max_descriptors = 2 * active_days.size() + 1;

  while (store_left > 0) {
    SessionDescriptor d;
    d.store_ops =
        (descriptors.size() + 1 >= max_descriptors)
            ? store_left
            : std::min<std::uint64_t>(
                  {SampleOpCount(rng, Direction::kStore, config_.model),
                   store_left,
                   cap_for_spread(store_left, descriptors.size())});
    store_left -= d.store_ops;
    if (mixed_user && retrieve_left > 0 &&
        rng.Bernoulli(config_.model.mixed_session_probability)) {
      d.retrieve_ops = std::min<std::uint64_t>(
          SampleOpCount(rng, Direction::kRetrieve, config_.model),
          retrieve_left);
      retrieve_left -= d.retrieve_ops;
    }
    descriptors.push_back(d);
  }
  while (retrieve_left > 0) {
    SessionDescriptor d;
    d.retrieve_ops =
        (descriptors.size() + 1 >= max_descriptors)
            ? retrieve_left
            : std::min<std::uint64_t>(
                  {SampleOpCount(rng, Direction::kRetrieve, config_.model),
                   retrieve_left,
                   cap_for_spread(retrieve_left, descriptors.size())});
    retrieve_left -= d.retrieve_ops;
    descriptors.push_back(d);
  }
  // Non-engaged users show up once: their whole store budget lands in a
  // single session instead of a same-day burst of many sessions (the
  // trace-wide average is well under one session per user-day, §3.1.1).
  // Retrievals keep at most two sessions — downloads are pull-driven (a
  // photo looked up now, another later the same day), and collapsing them
  // to one session under-counts the 29.9% retrieve-only session share.
  if (!user.engaged && descriptors.size() > 2) {
    SessionDescriptor store_all;
    std::uint64_t retrieve_total = 0;
    for (const SessionDescriptor& d : descriptors) {
      store_all.store_ops += d.store_ops;
      retrieve_total += d.retrieve_ops;
    }
    descriptors.clear();
    if (store_all.store_ops > 0) descriptors.push_back(store_all);
    if (retrieve_total > 0) {
      SessionDescriptor first;
      first.retrieve_ops = std::min<std::uint64_t>(
          SampleOpCount(rng, Direction::kRetrieve, config_.model),
          retrieve_total);
      descriptors.push_back(first);
      if (retrieve_total > first.retrieve_ops) {
        SessionDescriptor rest;
        rest.retrieve_ops = retrieve_total - first.retrieve_ops;
        descriptors.push_back(rest);
      }
    }
  }
  rng.Shuffle(descriptors);

  // Same-user sessions on one day must not land within τ of each other, or
  // the analysis would (correctly) merge them; people also do not start a
  // fresh backup minutes after finishing one. Track per-day start times and
  // keep a minimum spacing. Flat (day, second) pairs: users place a handful
  // of sessions, so a linear scan beats a per-user hash map.
  std::vector<std::pair<int, Seconds>>& day_slots = scratch.day_slots;
  day_slots.clear();
  const Seconds min_spacing = 3.0 * kHour;

  for (std::size_t di = 0; di < descriptors.size(); ++di) {
    const SessionDescriptor& d = descriptors[di];
    SessionPlan& s = NextSlot(scratch);
    s.user_id = user.user_id;

    // Device assignment: stores originate on the phone, retrievals are
    // split between phone and PC for mobile&PC users (§3.2.2).
    const bool has_mobile = user.IsMobileUser();
    const bool retrieval_session = d.store_ops == 0;
    bool use_pc = !has_mobile;
    if (has_mobile && user.uses_pc) {
      use_pc = retrieval_session
                   ? rng.Bernoulli(d.retrieve_ops >= 3
                                       ? cal::kRetrieveFromPcShareBulk
                                       : cal::kRetrieveFromPcShareSmall)
                   : !rng.Bernoulli(cal::kStoreFromMobileShare);
    }
    if (use_pc) {
      s.device_type = DeviceType::kPc;
      // PC device ids live in a disjoint range derived from the user id.
      s.device_id = (1ULL << 48) + user.user_id;
    } else {
      const auto& dev = user.mobile_devices[rng.UniformInt(
          user.mobile_devices.size())];
      s.device_type = dev.type;
      s.device_id = dev.device_id;
    }

    // Round-robin over active days (first session on the first active day)
    // so every active day actually carries a session — engagement analyses
    // define "active" as having a session that day.
    const int day = active_days[di % active_days.size()];
    Seconds second_of_day = 0;
    for (int attempt = 0; attempt < 12; ++attempt) {
      second_of_day = diurnal_.SampleSecondOfDay(rng);
      bool clear = true;
      for (const auto& [used_day, used_second] : day_slots) {
        if (used_day == day &&
            std::abs(used_second - second_of_day) < min_spacing) {
          clear = false;
          break;
        }
      }
      if (clear) break;
    }
    day_slots.emplace_back(day, second_of_day);
    s.start = config_.trace_start +
              static_cast<UnixSeconds>(day) * static_cast<UnixSeconds>(kDay) +
              static_cast<UnixSeconds>(second_of_day);

    if (d.store_ops > 0)
      FillOps(s, Direction::kStore, d.store_ops, occasional_cap, rng);
    if (d.retrieve_ops > 0)
      FillOps(s, Direction::kRetrieve, d.retrieve_ops, occasional_cap, rng);

    // Mobile&PC sync (Fig 9): a phone upload is often pulled down on the
    // PC the same day — but only by users who retrieve at all. Upload-only
    // users must keep a retrieval volume of ~zero, or they would classify
    // as mixed and break Table 3's mobile&PC column.
    const bool mobile_store =
        !use_pc && d.store_ops > 0 && user.uses_pc && has_mobile &&
        user.retrieve_files > 0;
    if (mobile_store && rng.Bernoulli(config_.model.pc_sync_after_upload)) {
      // Claim the sync slot first: NextSlot may grow the pool, so the
      // upload reference must be taken afterwards (by index).
      const std::size_t up_index = scratch.used - 1;
      SessionPlan& sync = NextSlot(scratch);
      const SessionPlan& up = scratch.pool[up_index];
      sync.user_id = user.user_id;
      sync.device_type = DeviceType::kPc;
      sync.device_id = (1ULL << 48) + user.user_id;
      // Hours later (evening upload → sync from the PC at night/morning),
      // comfortably past τ so it is a distinct session and clear of the
      // Fig 3 valley region.
      sync.start = up.start + static_cast<UnixSeconds>(
          kHour * (2.5 + 3.5 * rng.Uniform()));
      const std::size_t n = std::max<std::size_t>(1, up.ops.size() / 2);
      Seconds offset = 0;
      for (std::size_t i = 0; i < n; ++i) {
        FileOp op;
        op.direction = Direction::kRetrieve;
        op.size = up.ops[i].size;
        op.offset = offset;
        offset += SampleOpGap(rng, n + i, config_.model);
        sync.ops.push_back(op);
      }
    }
  }

  // Chronological order, ties in insertion order — the radix permutation
  // over start keys reproduces std::stable_sort exactly. Slots are swapped
  // (not move-assigned) into the gather pool so no ops capacity is freed;
  // the two pools ping-pong across users.
  const std::size_t n = scratch.used;
  if (n < 2) return;
  scratch.starts.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    scratch.starts[i] = scratch.pool[i].start;
  const RadixKey key[1] = {RadixKey::I64(scratch.starts)};
  const std::span<const std::uint32_t> perm = scratch.sorter.Sort(n, key);
  if (scratch.pool2.size() < scratch.pool.size()) {
    scratch.slot_growth += scratch.pool.size() - scratch.pool2.size();
    scratch.pool2.resize(scratch.pool.size());
  }
  for (std::size_t j = 0; j < n; ++j)
    std::swap(scratch.pool2[j], scratch.pool[perm[j]]);
  scratch.pool.swap(scratch.pool2);
}

std::vector<SessionPlan> SessionModel::PlanUser(const UserProfile& user,
                                                Rng& rng) const {
  PlanScratch scratch;
  PlanUserInto(user, rng, scratch);
  std::vector<SessionPlan> sessions;
  sessions.reserve(scratch.used);
  for (std::size_t i = 0; i < scratch.used; ++i)
    sessions.push_back(std::move(scratch.pool[i]));
  return sessions;
}

}  // namespace mcloud::workload
