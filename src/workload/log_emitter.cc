#include "workload/log_emitter.h"

#include <algorithm>
#include <cmath>

#include "tcp/flow.h"
#include "util/error.h"
#include "workload/calibration.h"

namespace mcloud::workload {

double FastLogEmitter::BaseThroughput(DeviceType device,
                                      Direction direction) {
  switch (device) {
    case DeviceType::kPc:
      return cal::kLinkBps_Pc;
    case DeviceType::kIos:
      return direction == Direction::kStore ? cal::kUplinkBps_Ios
                                            : cal::kDownlinkBps_Ios;
    case DeviceType::kAndroid:
      return direction == Direction::kStore ? cal::kUplinkBps_Android
                                            : cal::kDownlinkBps_Android;
  }
  throw Error("invalid DeviceType");
}

void FastLogEmitter::EmitSession(const SessionPlan& session, Rng& rng,
                                 std::vector<LogRecord>& out) const {
  MCLOUD_REQUIRE(!session.ops.empty(), "session has no operations");

  // Per-session (≈ per-connection) network characteristics.
  const Seconds rtt =
      rng.LogNormal(std::log(cal::kRttMedian), cal::kRttSigma);
  const bool proxied = rng.Bernoulli(cal::kProxiedShare);

  LogRecord base;
  base.device_type = session.device_type;
  base.device_id = session.device_id;
  base.user_id = session.user_id;
  base.proxied = proxied;

  auto sample_tsrv = [&rng] {
    return rng.LogNormal(std::log(cal::kTsrvMedian), cal::kTsrvSigma);
  };

  // A serialized transfer pipe per direction: chunks of queued files move
  // back to back at the device's effective throughput (one TCP connection
  // per direction; chunk requests on a connection are sequential, §2.1).
  Seconds pipe_free_store = 0;
  Seconds pipe_free_retrieve = 0;

  for (const FileOp& op : session.ops) {
    const Seconds tsrv_op = sample_tsrv() * 0.3;  // metadata-only exchange
    LogRecord file_op = base;
    file_op.timestamp =
        session.start + static_cast<UnixSeconds>(op.offset);
    file_op.request_type = RequestType::kFileOperation;
    file_op.direction = op.direction;
    file_op.data_volume = 0;
    file_op.server_time = tsrv_op;
    file_op.processing_time = tsrv_op + rtt;
    file_op.avg_rtt = rtt;
    out.push_back(file_op);

    // Chunk transfers: throughput jitters per file (radio conditions vary
    // over a session).
    const double rate =
        BaseThroughput(session.device_type, op.direction) *
        rng.LogNormal(0.0, 0.45);
    Seconds& pipe_free = (op.direction == Direction::kStore)
                             ? pipe_free_store
                             : pipe_free_retrieve;
    Seconds cursor = std::max(op.offset + rtt, pipe_free);
    for (Bytes chunk : tcp::SplitIntoChunks(op.size, kChunkSize)) {
      const Seconds tsrv = sample_tsrv();
      const Seconds transfer = static_cast<double>(chunk) / rate;
      cursor += transfer;

      LogRecord rec = base;
      rec.timestamp = session.start + static_cast<UnixSeconds>(cursor);
      rec.request_type = RequestType::kChunkRequest;
      rec.direction = op.direction;
      rec.data_volume = chunk;
      rec.server_time = tsrv;
      rec.processing_time = transfer + tsrv;
      rec.avg_rtt = rtt * rng.LogNormal(0.0, 0.10);
      out.push_back(rec);

      // Inter-chunk gap: HTTP-level acknowledgment plus client preparation.
      cursor += tsrv + rtt;
    }
    pipe_free = cursor;
  }
}

std::vector<LogRecord> FastLogEmitter::Emit(
    std::span<const SessionPlan> sessions, Rng& rng) const {
  std::vector<LogRecord> out;
  // ~3 chunk records per stored file on average; reserve generously.
  out.reserve(sessions.size() * 8);
  for (const auto& s : sessions) EmitSession(s, rng, out);
  return out;
}

}  // namespace mcloud::workload
