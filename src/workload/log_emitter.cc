#include "workload/log_emitter.h"

#include <algorithm>
#include <cmath>

#include "tcp/flow.h"
#include "util/error.h"
#include "workload/calibration.h"

namespace mcloud::workload {

namespace {

// Hoisted log-medians of the per-session lognormal samplers: computed once
// instead of per record. Same std::log on the same constants — the sampled
// values are bit-identical to the inline form.
const double kLogRttMedian = std::log(cal::kRttMedian);
const double kLogTsrvMedian = std::log(cal::kTsrvMedian);

}  // namespace

double FastLogEmitter::BaseThroughput(DeviceType device,
                                      Direction direction) {
  switch (device) {
    case DeviceType::kPc:
      return cal::kLinkBps_Pc;
    case DeviceType::kIos:
      return direction == Direction::kStore ? cal::kUplinkBps_Ios
                                            : cal::kDownlinkBps_Ios;
    case DeviceType::kAndroid:
      return direction == Direction::kStore ? cal::kUplinkBps_Android
                                            : cal::kDownlinkBps_Android;
  }
  throw Error("invalid DeviceType");
}

void FastLogEmitter::EmitSession(const SessionPlan& session, Rng& rng,
                                 std::vector<LogRecord>& out) const {
  MCLOUD_REQUIRE(!session.ops.empty(), "session has no operations");

  // Per-session (≈ per-connection) network characteristics.
  const Seconds rtt = rng.LogNormal(kLogRttMedian, cal::kRttSigma);
  const bool proxied = rng.Bernoulli(cal::kProxiedShare);

  LogRecord base;
  base.device_type = session.device_type;
  base.device_id = session.device_id;
  base.user_id = session.user_id;
  base.proxied = proxied;

  auto sample_tsrv = [&rng] {
    return rng.LogNormal(kLogTsrvMedian, cal::kTsrvSigma);
  };

  // A serialized transfer pipe per direction: chunks of queued files move
  // back to back at the device's effective throughput (one TCP connection
  // per direction; chunk requests on a connection are sequential, §2.1).
  Seconds pipe_free_store = 0;
  Seconds pipe_free_retrieve = 0;

  for (const FileOp& op : session.ops) {
    const Seconds tsrv_op = sample_tsrv() * 0.3;  // metadata-only exchange
    LogRecord file_op = base;
    file_op.timestamp =
        session.start + static_cast<UnixSeconds>(op.offset);
    file_op.request_type = RequestType::kFileOperation;
    file_op.direction = op.direction;
    file_op.data_volume = 0;
    file_op.server_time = tsrv_op;
    file_op.processing_time = tsrv_op + rtt;
    file_op.avg_rtt = rtt;
    out.push_back(file_op);

    // Chunk transfers: throughput jitters per file (radio conditions vary
    // over a session).
    const double rate =
        BaseThroughput(session.device_type, op.direction) *
        rng.LogNormal(0.0, 0.45);
    Seconds& pipe_free = (op.direction == Direction::kStore)
                             ? pipe_free_store
                             : pipe_free_retrieve;
    Seconds cursor = std::max(op.offset + rtt, pipe_free);
    for (Bytes chunk : tcp::SplitIntoChunks(op.size, kChunkSize)) {
      const Seconds tsrv = sample_tsrv();
      const Seconds transfer = static_cast<double>(chunk) / rate;
      cursor += transfer;

      LogRecord rec = base;
      rec.timestamp = session.start + static_cast<UnixSeconds>(cursor);
      rec.request_type = RequestType::kChunkRequest;
      rec.direction = op.direction;
      rec.data_volume = chunk;
      rec.server_time = tsrv;
      rec.processing_time = transfer + tsrv;
      rec.avg_rtt = rtt * rng.LogNormal(0.0, 0.10);
      out.push_back(rec);

      // Inter-chunk gap: HTTP-level acknowledgment plus client preparation.
      cursor += tsrv + rtt;
    }
    pipe_free = cursor;
  }
}

void FastLogEmitter::EmitSessionColumnar(const SessionPlan& session, Rng& rng,
                                         RecordColumns& out,
                                         EmitScratch& scratch) const {
  MCLOUD_REQUIRE(!session.ops.empty(), "session has no operations");

  // Per-session (≈ per-connection) network characteristics — the scalar
  // draws, in the scalar order.
  const Seconds rtt = rng.LogNormal(kLogRttMedian, cal::kRttSigma);
  const bool proxied = rng.Bernoulli(cal::kProxiedShare);

  // Every draw after `proxied` is a standard normal mapped through
  // exp(mu + sigma·z): two per file op (metadata T_srv, throughput jitter)
  // and two per chunk (T_srv, RTT jitter). One batched fill replaces them
  // all — FillNormal consumes the engine exactly as the scalar calls would.
  std::size_t n_normals = 0;
  std::size_t n_records = 0;
  for (const FileOp& op : session.ops) {
    const std::size_t chunks =
        static_cast<std::size_t>(op.size / kChunkSize) +
        (op.size % kChunkSize != 0 ? 1 : 0);
    n_normals += 2 + 2 * chunks;
    n_records += 1 + chunks;
  }
  scratch.normals.resize(n_normals);
  rng.FillNormal(scratch.normals);
  const double* z = scratch.normals.data();

  // Grow geometrically: reserve(size()+n) every session would reallocate
  // to the exact size each time and turn emission quadratic.
  if (out.capacity() < out.size() + n_records)
    out.reserve(std::max(out.size() + n_records, 2 * out.capacity()));
  const std::uint8_t device_type =
      static_cast<std::uint8_t>(session.device_type);
  const std::uint8_t proxied_u8 = proxied ? 1 : 0;

  Seconds pipe_free_store = 0;
  Seconds pipe_free_retrieve = 0;

  for (const FileOp& op : session.ops) {
    const std::uint8_t direction = static_cast<std::uint8_t>(op.direction);
    const Seconds tsrv_op =
        std::exp(kLogTsrvMedian + cal::kTsrvSigma * *z++) * 0.3;
    out.timestamps.push_back(session.start +
                             static_cast<UnixSeconds>(op.offset));
    out.device_types.push_back(device_type);
    out.device_ids.push_back(session.device_id);
    out.user_ids.push_back(session.user_id);
    out.request_types.push_back(
        static_cast<std::uint8_t>(RequestType::kFileOperation));
    out.directions.push_back(direction);
    out.data_volumes.push_back(0);
    out.processing_times.push_back(tsrv_op + rtt);
    out.server_times.push_back(tsrv_op);
    out.avg_rtts.push_back(rtt);
    out.proxied.push_back(proxied_u8);

    const double rate = BaseThroughput(session.device_type, op.direction) *
                        std::exp(0.0 + 0.45 * *z++);
    Seconds& pipe_free = (op.direction == Direction::kStore)
                             ? pipe_free_store
                             : pipe_free_retrieve;
    Seconds cursor = std::max(op.offset + rtt, pipe_free);
    // Chunk walk without the SplitIntoChunks vector: `full` whole chunks
    // then the tail remainder — the identical chunk sequence.
    const std::size_t full = static_cast<std::size_t>(op.size / kChunkSize);
    const Bytes tail = op.size % kChunkSize;
    const std::size_t chunks = full + (tail != 0 ? 1 : 0);
    for (std::size_t c = 0; c < chunks; ++c) {
      const Bytes chunk = c < full ? kChunkSize : tail;
      const Seconds tsrv = std::exp(kLogTsrvMedian + cal::kTsrvSigma * *z++);
      const Seconds transfer = static_cast<double>(chunk) / rate;
      cursor += transfer;

      out.timestamps.push_back(session.start +
                               static_cast<UnixSeconds>(cursor));
      out.device_types.push_back(device_type);
      out.device_ids.push_back(session.device_id);
      out.user_ids.push_back(session.user_id);
      out.request_types.push_back(
          static_cast<std::uint8_t>(RequestType::kChunkRequest));
      out.directions.push_back(direction);
      out.data_volumes.push_back(chunk);
      out.processing_times.push_back(transfer + tsrv);
      out.server_times.push_back(tsrv);
      out.avg_rtts.push_back(rtt * std::exp(0.0 + 0.10 * *z++));
      out.proxied.push_back(proxied_u8);

      cursor += tsrv + rtt;
    }
    pipe_free = cursor;
  }
}

std::vector<LogRecord> FastLogEmitter::Emit(
    std::span<const SessionPlan> sessions, Rng& rng) const {
  std::vector<LogRecord> out;
  // ~3 chunk records per stored file on average; reserve generously.
  out.reserve(sessions.size() * 8);
  for (const auto& s : sessions) EmitSession(s, rng, out);
  return out;
}

}  // namespace mcloud::workload
