// Fast execution backend: turns SessionPlans into LogRecords with sampled
// (rather than packet-simulated) timing.
//
// This backend generates the multi-million-record week trace consumed by all
// §3 behavioural analyses, where only the *fields* of Table 1 matter. The §4
// performance benches use cloud::StorageService, which executes sessions
// through the TCP substrate instead and produces mechanistic timings.
//
// Two emission paths produce the identical record stream from the identical
// RNG draws (pinned by tests):
//   * EmitSession — scalar AoS reference path, one LogRecord per push_back.
//   * EmitSessionColumnar — the fast path: all post-connection draws of a
//     session are standard normals, so one batched FillNormal supplies the
//     whole session and fields are stored straight into SoA columns.
#pragma once

#include <span>
#include <vector>

#include "trace/log_record.h"
#include "trace/record_columns.h"
#include "util/rng.h"
#include "workload/session_plan.h"

namespace mcloud::workload {

/// Reusable per-worker emission scratch (the batched normal buffer). Keep
/// one per shard and steady-state emission allocates nothing.
struct EmitScratch {
  std::vector<double> normals;
};

class FastLogEmitter {
 public:
  FastLogEmitter() = default;

  /// Emit the log records of one session, appended to `out`.
  void EmitSession(const SessionPlan& session, Rng& rng,
                   std::vector<LogRecord>& out) const;

  /// Columnar twin of EmitSession: appends the same records (same RNG
  /// stream, bit-identical fields) to SoA columns, drawing the session's
  /// normals as one batch.
  void EmitSessionColumnar(const SessionPlan& session, Rng& rng,
                           RecordColumns& out, EmitScratch& scratch) const;

  /// Emit records for many sessions; the result is NOT time-sorted (callers
  /// sort once after all sessions are emitted).
  [[nodiscard]] std::vector<LogRecord> Emit(
      std::span<const SessionPlan> sessions, Rng& rng) const;

  /// Effective application-level throughput (bytes/s) of a device for a
  /// direction, before per-session jitter.
  [[nodiscard]] static double BaseThroughput(DeviceType device,
                                             Direction direction);
};

}  // namespace mcloud::workload
