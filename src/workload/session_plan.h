// Intermediate representation between the behavioural models and the log
// emitters: a SessionPlan says *what* a user does and *when*; an execution
// backend (the fast log emitter, or the cloud service simulator with its TCP
// substrate) turns it into LogRecords with concrete timing.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/log_record.h"
#include "util/units.h"

namespace mcloud::workload {

/// One planned file store or retrieve within a session.
struct FileOp {
  Direction direction = Direction::kStore;
  Bytes size = 0;
  /// Offset of the file-operation request from the session start. Operations
  /// cluster at the session beginning (§3.1.2 burstiness).
  Seconds offset = 0;
};

enum class SessionType : std::uint8_t {
  kStoreOnly = 0,
  kRetrieveOnly = 1,
  kMixed = 2,
};

struct SessionPlan {
  std::uint64_t user_id = 0;
  std::uint64_t device_id = 0;
  DeviceType device_type = DeviceType::kAndroid;
  UnixSeconds start = 0;
  std::vector<FileOp> ops;

  [[nodiscard]] SessionType Type() const {
    bool store = false;
    bool retrieve = false;
    for (const auto& op : ops) {
      (op.direction == Direction::kStore ? store : retrieve) = true;
    }
    if (store && retrieve) return SessionType::kMixed;
    return store ? SessionType::kStoreOnly : SessionType::kRetrieveOnly;
  }

  [[nodiscard]] Bytes TotalBytes() const {
    Bytes total = 0;
    for (const auto& op : ops) total += op.size;
    return total;
  }
};

}  // namespace mcloud::workload
