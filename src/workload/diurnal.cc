#include "workload/diurnal.h"

#include <algorithm>

#include "util/error.h"

namespace mcloud::workload {

DiurnalPattern::DiurnalPattern(const std::array<double, 24>& hour_weights)
    : weights_(hour_weights) {
  for (double w : weights_) {
    MCLOUD_REQUIRE(w >= 0, "hour weights must be non-negative");
    total_ += w;
  }
  MCLOUD_REQUIRE(total_ > 0, "hour weights must not all be zero");
}

Seconds DiurnalPattern::SampleSecondOfDay(Rng& rng) const {
  const std::size_t hour = rng.PickWeighted(weights_);
  return static_cast<Seconds>(hour) * kHour + rng.Uniform(0.0, kHour);
}

double DiurnalPattern::HourShare(int hour) const {
  MCLOUD_REQUIRE(hour >= 0 && hour < 24, "hour out of range");
  return weights_[static_cast<std::size_t>(hour)] / total_;
}

int DiurnalPattern::PeakHour() const {
  const auto it = std::max_element(weights_.begin(), weights_.end());
  return static_cast<int>(it - weights_.begin());
}

}  // namespace mcloud::workload
