// Lays a user's weekly activity budget out into concrete SessionPlans:
// which days they are active, how many sessions, how many file operations
// per session, what each file weighs, and when each operation fires within
// the session.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/radix_sort.h"
#include "util/rng.h"
#include "workload/diurnal.h"
#include "workload/model_params.h"
#include "workload/session_plan.h"
#include "workload/user_model.h"

namespace mcloud::workload {

struct SessionModelConfig {
  UnixSeconds trace_start = 0;
  int days = 7;
  /// Runtime model parameters; the default reproduces the legacy
  /// compile-time calibration byte for byte.
  ModelParams model{};
};

/// Per-session op budget before device/day/timing assignment.
struct SessionDescriptor {
  std::size_t store_ops = 0;
  std::size_t retrieve_ops = 0;
};

/// Reusable planning scratch: pooled SessionPlan slots plus every transient
/// container PlanUser needs. Keep one per shard/worker and steady-state
/// planning allocates nothing — slots (and their ops vectors) are recycled
/// across users with capacity intact.
struct PlanScratch {
  /// Slot pool; the first `used` entries are the current user's sessions,
  /// in chronological order after PlanUserInto returns.
  std::vector<SessionPlan> pool;
  std::size_t used = 0;
  /// Gather target of the final start-order sort (ping-pongs with `pool`).
  std::vector<SessionPlan> pool2;

  std::vector<int> active_days;
  std::vector<SessionDescriptor> descriptors;
  /// (day, second-of-day) of already-placed sessions — flat replacement for
  /// the per-day hash map.
  std::vector<std::pair<int, Seconds>> day_slots;
  std::vector<std::int64_t> starts;
  StableRadixSorter sorter;

  /// Diagnostic: SessionPlan slots allocated over this scratch's lifetime
  /// (steady state should stop growing after warm-up).
  std::size_t slot_growth = 0;

  [[nodiscard]] std::span<const SessionPlan> sessions() const {
    return {pool.data(), used};
  }
};

class SessionModel {
 public:
  SessionModel(const SessionModelConfig& config,
               const DiurnalPattern& diurnal);

  /// All sessions of one user for the week, in chronological order.
  [[nodiscard]] std::vector<SessionPlan> PlanUser(const UserProfile& user,
                                                  Rng& rng) const;

  /// Allocation-free twin of PlanUser: plans into scratch.pool[0..used),
  /// chronological order, identical plans and RNG stream. Overwrites
  /// whatever the scratch held before.
  void PlanUserInto(const UserProfile& user, Rng& rng,
                    PlanScratch& scratch) const;

  /// Number of file operations for one session of the given direction
  /// (Fig 5a: ~40% single-op, ~10% above 20 ops).
  [[nodiscard]] static std::size_t SampleOpCount(Rng& rng, Direction direction,
                                                 const ModelParams& model);
  [[nodiscard]] static std::size_t SampleOpCount(Rng& rng,
                                                 Direction direction);

  /// Per-session average file size in bytes, conditioned on session
  /// direction and op count (Table 2 + the Fig 5b/5c size–count
  /// correlations).
  [[nodiscard]] static Bytes SampleSessionAvgFileSize(
      Rng& rng, Direction direction, std::size_t op_count,
      const ModelParams& model);
  [[nodiscard]] static Bytes SampleSessionAvgFileSize(Rng& rng,
                                                      Direction direction,
                                                      std::size_t op_count);

 private:
  void ActiveDaysInto(const UserProfile& user, Rng& rng,
                      std::vector<int>& days) const;
  [[nodiscard]] UnixSeconds SampleSessionStart(int day, Rng& rng) const;
  /// `occasional_cap` — 0 for regular users; for occasional-intent users,
  /// the per-file ceiling derived from their total op budget (so the weekly
  /// volume stays near the 1 MB class boundary).
  void FillOps(SessionPlan& session, Direction direction, std::size_t count,
               Bytes occasional_cap, Rng& rng) const;

  SessionModelConfig config_;
  const DiurnalPattern& diurnal_;
};

}  // namespace mcloud::workload
