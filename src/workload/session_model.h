// Lays a user's weekly activity budget out into concrete SessionPlans:
// which days they are active, how many sessions, how many file operations
// per session, what each file weighs, and when each operation fires within
// the session.
#pragma once

#include <vector>

#include "util/rng.h"
#include "workload/diurnal.h"
#include "workload/model_params.h"
#include "workload/session_plan.h"
#include "workload/user_model.h"

namespace mcloud::workload {

struct SessionModelConfig {
  UnixSeconds trace_start = 0;
  int days = 7;
  /// Runtime model parameters; the default reproduces the legacy
  /// compile-time calibration byte for byte.
  ModelParams model{};
};

class SessionModel {
 public:
  SessionModel(const SessionModelConfig& config,
               const DiurnalPattern& diurnal);

  /// All sessions of one user for the week, in chronological order.
  [[nodiscard]] std::vector<SessionPlan> PlanUser(const UserProfile& user,
                                                  Rng& rng) const;

  /// Number of file operations for one session of the given direction
  /// (Fig 5a: ~40% single-op, ~10% above 20 ops).
  [[nodiscard]] static std::size_t SampleOpCount(Rng& rng, Direction direction,
                                                 const ModelParams& model);
  [[nodiscard]] static std::size_t SampleOpCount(Rng& rng,
                                                 Direction direction);

  /// Per-session average file size in bytes, conditioned on session
  /// direction and op count (Table 2 + the Fig 5b/5c size–count
  /// correlations).
  [[nodiscard]] static Bytes SampleSessionAvgFileSize(
      Rng& rng, Direction direction, std::size_t op_count,
      const ModelParams& model);
  [[nodiscard]] static Bytes SampleSessionAvgFileSize(Rng& rng,
                                                      Direction direction,
                                                      std::size_t op_count);

 private:
  [[nodiscard]] std::vector<int> ActiveDays(const UserProfile& user,
                                            Rng& rng) const;
  [[nodiscard]] UnixSeconds SampleSessionStart(int day, Rng& rng) const;
  /// `occasional_cap` — 0 for regular users; for occasional-intent users,
  /// the per-file ceiling derived from their total op budget (so the weekly
  /// volume stays near the 1 MB class boundary).
  void FillOps(SessionPlan& session, Direction direction, std::size_t count,
               Bytes occasional_cap, Rng& rng) const;

  SessionModelConfig config_;
  const DiurnalPattern& diurnal_;
};

}  // namespace mcloud::workload
