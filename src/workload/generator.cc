#include "workload/generator.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "trace/partitioned_trace.h"
#include "util/parallel.h"
#include "util/radix_sort.h"
#include "workload/calibration.h"
#include "workload/diurnal.h"
#include "workload/log_emitter.h"
#include "workload/session_model.h"

namespace mcloud::workload {

namespace {

using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Sort sessions by (start, user_id), ties in current order — the session
/// order of the final workload. A stable radix permutation over the two
/// keys plus one move-gather: identical order to std::stable_sort with the
/// old SessionStartOrder comparator.
void SortSessionsByStart(std::vector<SessionPlan>& sessions) {
  const std::size_t n = sessions.size();
  if (n < 2) return;
  std::vector<std::int64_t> starts(n);
  std::vector<std::uint64_t> users(n);
  for (std::size_t i = 0; i < n; ++i) {
    starts[i] = sessions[i].start;
    users[i] = sessions[i].user_id;
  }
  StableRadixSorter sorter;
  const RadixKey keys[2] = {RadixKey::I64(starts), RadixKey::U64(users)};
  const std::span<const std::uint32_t> perm = sorter.Sort(n, keys);
  std::vector<SessionPlan> sorted;
  sorted.reserve(n);
  for (std::size_t j = 0; j < n; ++j)
    sorted.push_back(std::move(sessions[perm[j]]));
  sessions = std::move(sorted);
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config) {}

Workload WorkloadGenerator::PlanAndEmit(RecordColumns* trace,
                                        GenTimings* timings,
                                        bool sort_trace) const {
  const bool emit_logs = trace != nullptr;
  ThreadPool pool(config_.threads);
  Rng rng(config_.seed);

  auto t0 = Clock::now();
  Workload w;
  PopulationBuilder population(config_.population, config_.model);
  w.users = population.Build(rng, &pool);
  if (timings) timings->plan_s += Since(t0);
  // Root key of all per-user session streams. Drawn after the population's
  // root so the two stream families never collide.
  const std::uint64_t session_root = rng.NextU64();

  const DiurnalPattern diurnal(config_.model.hour_weights);
  SessionModelConfig smc;
  smc.trace_start = config_.trace_start;
  smc.days = config_.population.days;
  smc.model = config_.model;
  const SessionModel session_model(smc, diurnal);
  const FastLogEmitter emitter;

  // Shard users across the pool. Each user's sessions and records are drawn
  // from Rng::ForStream(session_root, user_id) — a pure function of the
  // seed and the user id — so the shard a user lands on cannot perturb any
  // stream. Shards cover contiguous ascending user ranges, so concatenating
  // shard runs in shard order is the user-ordered emission; ONE global
  // stable radix sort of that concatenation equals the stable sort the old
  // per-shard sort + stable k-way merge computed, independent of the shard
  // count.
  const std::size_t shards = ShardCount(pool, w.users.size());
  std::vector<std::vector<SessionPlan>> session_runs(shards);
  std::vector<RecordColumns> cols_runs(emit_logs ? shards : 0);
  std::vector<double> shard_plan_s(shards, 0.0);
  std::vector<double> shard_emit_s(shards, 0.0);
  std::vector<std::size_t> shard_slot_allocs(shards, 0);
  std::vector<std::size_t> shard_growths(shards, 0);
  const bool want_timing = timings != nullptr;

  ParallelForShards(
      pool, w.users.size(),
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        std::vector<SessionPlan>& sessions = session_runs[shard];
        RecordColumns* cols = emit_logs ? &cols_runs[shard] : nullptr;
        PlanScratch plan_scratch;
        EmitScratch emit_scratch;
        for (std::size_t i = begin; i < end; ++i) {
          const UserProfile& user = w.users[i];
          // Independent per-user stream: adding users or re-sharding never
          // perturbs the randomness of existing ones.
          Rng user_rng = Rng::ForStream(session_root, user.user_id);
          Clock::time_point u0;
          if (want_timing) u0 = Clock::now();
          session_model.PlanUserInto(user, user_rng, plan_scratch);
          if (want_timing) {
            const auto u1 = Clock::now();
            shard_plan_s[shard] +=
                std::chrono::duration<double>(u1 - u0).count();
            u0 = u1;
          }
          if (emit_logs) {
            const std::size_t cap = cols->capacity();
            for (const SessionPlan& s : plan_scratch.sessions())
              emitter.EmitSessionColumnar(s, user_rng, *cols, emit_scratch);
            if (cols->capacity() != cap) ++shard_growths[shard];
            if (want_timing) shard_emit_s[shard] += Since(u0);
          }
          // The plans survive into the workload result: move them out of
          // the pool (slots re-grow their ops storage on the next user).
          for (std::size_t k = 0; k < plan_scratch.used; ++k)
            sessions.push_back(std::move(plan_scratch.pool[k]));
        }
        shard_slot_allocs[shard] = plan_scratch.slot_growth;
      });

  t0 = Clock::now();
  // User-ordered concatenation of the shard runs, then one global sort.
  std::size_t n_sessions = 0;
  for (const auto& run : session_runs) n_sessions += run.size();
  w.sessions.reserve(n_sessions);
  for (auto& run : session_runs) {
    w.sessions.insert(w.sessions.end(), std::make_move_iterator(run.begin()),
                      std::make_move_iterator(run.end()));
    run = std::vector<SessionPlan>();
  }
  SortSessionsByStart(w.sessions);

  if (emit_logs) {
    std::size_t n_records = 0;
    for (const auto& run : cols_runs) n_records += run.size();
    trace->reserve(n_records);
    for (auto& run : cols_runs) {
      trace->AppendAll(std::move(run));
      run = RecordColumns();
    }
    if (sort_trace) {
      RecordColumnsScratch sort_scratch;
      trace->SortByTimeOrder(sort_scratch);
    }
  }
  if (timings) {
    timings->sort_s += Since(t0);
    for (std::size_t s = 0; s < shards; ++s) {
      timings->plan_s += shard_plan_s[s];
      timings->emit_s += shard_emit_s[s];
      timings->plan_slot_allocs += shard_slot_allocs[s];
      timings->record_buffer_growths += shard_growths[s];
    }
  }
  return w;
}

Workload WorkloadGenerator::Generate(GenTimings* timings) const {
  const auto t0 = Clock::now();
  RecordColumns cols;
  Workload w = PlanAndEmit(&cols, timings, /*sort_trace=*/false);
  // Fuse the time-order sort with the AoS transpose: gather straight from
  // the unsorted columns through the stable permutation. Identical bytes to
  // sorting the columns first and transposing row by row, one full
  // materialization pass cheaper.
  const auto s0 = Clock::now();
  RecordColumnsScratch sort_scratch;
  w.trace = cols.ToRecords(cols.TimeOrderPerm(sort_scratch));
  if (timings) {
    timings->sort_s += Since(s0);
    timings->total_s += Since(t0);
  }
  return w;
}

ColumnarWorkload WorkloadGenerator::GenerateColumnar(
    GenTimings* timings) const {
  const auto t0 = Clock::now();
  RecordColumns cols;
  Workload w = PlanAndEmit(&cols, timings);

  // The sorted columns move straight into the store builder — no
  // record-by-record append, no AoS copy.
  TraceStore::Builder b;
  b.day_base = config_.trace_start;
  b.timestamps = std::move(cols.timestamps);
  b.device_types = std::move(cols.device_types);
  b.device_ids = std::move(cols.device_ids);
  b.raw_users = std::move(cols.user_ids);
  b.request_types = std::move(cols.request_types);
  b.directions = std::move(cols.directions);
  b.data_volumes = std::move(cols.data_volumes);
  b.processing_times = std::move(cols.processing_times);
  b.server_times = std::move(cols.server_times);
  b.avg_rtts = std::move(cols.avg_rtts);
  b.proxied = std::move(cols.proxied);

  ColumnarWorkload out;
  out.users = std::move(w.users);
  out.sessions = std::move(w.sessions);
  out.trace = std::move(b).Build();
  if (timings) timings->total_s += Since(t0);
  return out;
}

Workload WorkloadGenerator::GeneratePlansOnly() const {
  return PlanAndEmit(nullptr, nullptr);
}

// Bounded-memory twin of PlanAndEmit + GenerateColumnar. The RNG sequence
// is replicated exactly (population build, then session_root, then pure
// per-user streams), so each user's records match the resident path byte
// for byte. Users are processed in fixed-size chunks in user order; the
// buffer therefore always holds a contiguous user range, and flushing it
// as a stably-sorted slice makes every spill a stably-sorted contiguous
// partition of the user-ordered emission — exactly what the partitioned
// reader's stable merge needs to reconstruct the global stable sort.
// Chunk boundaries and flush points depend only on the config, never on
// the thread count.
SpillSummary WorkloadGenerator::GenerateToPartitions(
    const SpillConfig& spill, GenTimings* timings) const {
  return GenerateToPartitions(spill, SliceSink{}, timings);
}

SpillSummary WorkloadGenerator::GenerateToPartitions(
    const SpillConfig& spill, const SliceSink& slice_sink,
    GenTimings* timings) const {
  const auto t_total = Clock::now();
  ThreadPool pool(config_.threads);
  Rng rng(config_.seed);

  auto t0 = Clock::now();
  PopulationBuilder population(config_.population, config_.model);
  const std::vector<UserProfile> users = population.Build(rng, &pool);
  if (timings) timings->plan_s += Since(t0);
  const std::uint64_t session_root = rng.NextU64();

  const DiurnalPattern diurnal(config_.model.hour_weights);
  SessionModelConfig smc;
  smc.trace_start = config_.trace_start;
  smc.days = config_.population.days;
  smc.model = config_.model;
  const SessionModel session_model(smc, diurnal);
  const FastLogEmitter emitter;

  PartitionedTraceWriter writer(spill.dir, config_.trace_start);

  // Still accounted in AoS LogRecord bytes: flush boundaries are part of
  // the deterministic spill layout and must not shift with the emitter's
  // in-memory representation.
  const std::size_t budget_records = std::max<std::size_t>(
      spill.max_buffer_bytes / sizeof(LogRecord), std::size_t{64} * 1024);
  const std::size_t users_per_chunk =
      std::max<std::size_t>(spill.users_per_chunk, 1);

  SpillSummary sum;
  sum.users = users.size();

  // Pooled per-window-slot scratch: plan pool, batched-normal buffer, and
  // the chunk's record columns. Slots are reused every batch, so
  // steady-state chunk emission allocates nothing.
  struct ChunkScratch {
    PlanScratch plan;
    EmitScratch emit;
    RecordColumns cols;
    double plan_s = 0;
    double emit_s = 0;
    std::size_t growths = 0;
  };

  const std::size_t n_chunks =
      (users.size() + users_per_chunk - 1) / users_per_chunk;
  const std::size_t window =
      std::max<std::size_t>(static_cast<std::size_t>(pool.threads()), 1) * 2;
  std::vector<ChunkScratch> slots(std::min(window, n_chunks));
  const bool want_timing = timings != nullptr;

  const auto fill_chunk = [&](std::size_t chunk, ChunkScratch& s) {
    s.cols.clear();
    const std::size_t cap = s.cols.capacity();
    const std::size_t begin = chunk * users_per_chunk;
    const std::size_t end =
        std::min(begin + users_per_chunk, users.size());
    for (std::size_t i = begin; i < end; ++i) {
      const UserProfile& user = users[i];
      Rng user_rng = Rng::ForStream(session_root, user.user_id);
      Clock::time_point u0;
      if (want_timing) u0 = Clock::now();
      // Plans live only in the pooled scratch — emitted and overwritten.
      session_model.PlanUserInto(user, user_rng, s.plan);
      if (want_timing) {
        const auto u1 = Clock::now();
        s.plan_s += std::chrono::duration<double>(u1 - u0).count();
        u0 = u1;
      }
      for (const SessionPlan& sp : s.plan.sessions())
        emitter.EmitSessionColumnar(sp, user_rng, s.cols, s.emit);
      if (want_timing) s.emit_s += Since(u0);
    }
    if (s.cols.capacity() != cap) ++s.growths;
  };

  RecordColumns buffer;
  RecordColumnsScratch sort_scratch;
  std::size_t buffer_growths = 0;
  const auto flush = [&] {
    if (buffer.empty()) return;
    auto f0 = Clock::now();
    buffer.SortByTimeOrder(sort_scratch);
    if (timings) {
      const auto f1 = Clock::now();
      timings->sort_s += std::chrono::duration<double>(f1 - f0).count();
      f0 = f1;
    }
    writer.WriteSortedSlice(buffer);
    if (timings) timings->write_s += Since(f0);
    ++sum.spills;
    if (slice_sink) {
      // Hand the sealed slice to the analysis side; a blocking sink is the
      // backpressure that keeps generation at the analysis rate.
      slice_sink(std::move(buffer));
      buffer = RecordColumns();
    } else {
      // Pooled: keep the capacity for the next fill cycle.
      buffer.clear();
    }
  };

  for (std::size_t next = 0; next < n_chunks; next += window) {
    const std::size_t batch = std::min(window, n_chunks - next);
    ParallelFor(pool, batch,
                [&](std::size_t i) { fill_chunk(next + i, slots[i]); });
    for (std::size_t i = 0; i < batch; ++i) {
      const RecordColumns& chunk = slots[i].cols;
      // Flush *before* appending, so the buffer never reallocates past the
      // budget mid-append (the doubling growth of push_back would briefly
      // double the footprint otherwise).
      if (!buffer.empty() && buffer.size() + chunk.size() > budget_records)
        flush();
      sum.records += chunk.size();
      const std::size_t cap = buffer.capacity();
      // Copy so the slot keeps its capacity for the next batch.
      buffer.AppendCopy(chunk);
      if (buffer.capacity() != cap) ++buffer_growths;
    }
  }
  flush();
  t0 = Clock::now();
  writer.Finish();
  sum.run_files = writer.run_files();
  if (timings) {
    timings->write_s += Since(t0);
    for (const ChunkScratch& s : slots) {
      timings->plan_s += s.plan_s;
      timings->emit_s += s.emit_s;
      timings->plan_slot_allocs += s.plan.slot_growth;
      timings->record_buffer_growths += s.growths;
    }
    timings->record_buffer_growths += buffer_growths;
    timings->total_s += Since(t_total);
  }
  return sum;
}

}  // namespace mcloud::workload
