#include "workload/generator.h"

#include <algorithm>
#include <utility>

#include "trace/partitioned_trace.h"
#include "util/merge.h"
#include "util/parallel.h"
#include "workload/calibration.h"
#include "workload/diurnal.h"
#include "workload/log_emitter.h"
#include "workload/session_model.h"

namespace mcloud::workload {

namespace {

/// Session order of the final workload: chronological, ties by user. Within
/// one (start, user_id) pair the per-user planning order is preserved by
/// stable sorting + stable merging.
bool SessionStartOrder(const SessionPlan& a, const SessionPlan& b) {
  if (a.start != b.start) return a.start < b.start;
  return a.user_id < b.user_id;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config) {}

Workload WorkloadGenerator::PlanAndEmit(
    std::vector<std::vector<LogRecord>>* trace_runs) const {
  const bool emit_logs = trace_runs != nullptr;
  ThreadPool pool(config_.threads);
  Rng rng(config_.seed);

  Workload w;
  PopulationBuilder population(config_.population, config_.model);
  w.users = population.Build(rng, &pool);
  // Root key of all per-user session streams. Drawn after the population's
  // root so the two stream families never collide.
  const std::uint64_t session_root = rng.NextU64();

  const DiurnalPattern diurnal(config_.model.hour_weights);
  SessionModelConfig smc;
  smc.trace_start = config_.trace_start;
  smc.days = config_.population.days;
  smc.model = config_.model;
  const SessionModel session_model(smc, diurnal);
  const FastLogEmitter emitter;

  // Shard users across the pool. Each user's sessions and records are drawn
  // from Rng::ForStream(session_root, user_id) — a pure function of the
  // seed and the user id — so the shard a user lands on cannot perturb any
  // stream. Every shard sorts its own run; a stable k-way merge then yields
  // exactly the stable sort of the user-ordered concatenation, independent
  // of the shard count.
  const std::size_t shards = ShardCount(pool, w.users.size());
  std::vector<std::vector<SessionPlan>> session_runs(shards);
  std::vector<std::vector<LogRecord>> local_runs(shards);

  ParallelForShards(
      pool, w.users.size(),
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        std::vector<SessionPlan>& sessions = session_runs[shard];
        std::vector<LogRecord>& trace = local_runs[shard];
        for (std::size_t i = begin; i < end; ++i) {
          const UserProfile& user = w.users[i];
          // Independent per-user stream: adding users or re-sharding never
          // perturbs the randomness of existing ones.
          Rng user_rng = Rng::ForStream(session_root, user.user_id);
          std::vector<SessionPlan> planned =
              session_model.PlanUser(user, user_rng);
          if (emit_logs) {
            for (const SessionPlan& s : planned)
              emitter.EmitSession(s, user_rng, trace);
          }
          sessions.insert(sessions.end(),
                          std::make_move_iterator(planned.begin()),
                          std::make_move_iterator(planned.end()));
        }
        std::stable_sort(sessions.begin(), sessions.end(),
                         SessionStartOrder);
        if (emit_logs)
          std::stable_sort(trace.begin(), trace.end(), LogRecordTimeOrder);
      });

  w.sessions = MergeSortedRuns(std::move(session_runs), SessionStartOrder);
  if (emit_logs) *trace_runs = std::move(local_runs);
  return w;
}

Workload WorkloadGenerator::Generate() const {
  std::vector<std::vector<LogRecord>> trace_runs;
  Workload w = PlanAndEmit(&trace_runs);
  w.trace = MergeSortedRuns(std::move(trace_runs), LogRecordTimeOrder);
  return w;
}

ColumnarWorkload WorkloadGenerator::GenerateColumnar() const {
  std::vector<std::vector<LogRecord>> trace_runs;
  Workload w = PlanAndEmit(&trace_runs);

  std::size_t total = 0;
  for (const auto& run : trace_runs) total += run.size();
  TraceStore::Builder b;
  b.day_base = config_.trace_start;
  b.Reserve(total);
  // The stable k-way merge feeds the builder record-by-record; run storage
  // frees as runs drain, so peak memory is the columns + unexhausted tails
  // instead of two full AoS copies.
  MergeSortedRunsInto(std::move(trace_runs), LogRecordTimeOrder,
                      [&b](LogRecord&& r) { b.Append(r); });

  ColumnarWorkload out;
  out.users = std::move(w.users);
  out.sessions = std::move(w.sessions);
  out.trace = std::move(b).Build();
  return out;
}

Workload WorkloadGenerator::GeneratePlansOnly() const {
  return PlanAndEmit(nullptr);
}

// Bounded-memory twin of PlanAndEmit + GenerateColumnar. The RNG sequence
// is replicated exactly (population build, then session_root, then pure
// per-user streams), so each user's records match the resident path byte
// for byte. Users are processed in fixed-size chunks in user order; the
// buffer therefore always holds a contiguous user range, and flushing it
// as a stably-sorted slice makes every spill a stably-sorted contiguous
// partition of the user-ordered emission — exactly what the partitioned
// reader's stable merge needs to reconstruct the global stable sort.
// Chunk boundaries and flush points depend only on the config, never on
// the thread count.
SpillSummary WorkloadGenerator::GenerateToPartitions(
    const SpillConfig& spill) const {
  return GenerateToPartitions(spill, SliceSink{});
}

SpillSummary WorkloadGenerator::GenerateToPartitions(
    const SpillConfig& spill, const SliceSink& slice_sink) const {
  ThreadPool pool(config_.threads);
  Rng rng(config_.seed);

  PopulationBuilder population(config_.population, config_.model);
  const std::vector<UserProfile> users = population.Build(rng, &pool);
  const std::uint64_t session_root = rng.NextU64();

  const DiurnalPattern diurnal(config_.model.hour_weights);
  SessionModelConfig smc;
  smc.trace_start = config_.trace_start;
  smc.days = config_.population.days;
  smc.model = config_.model;
  const SessionModel session_model(smc, diurnal);
  const FastLogEmitter emitter;

  PartitionedTraceWriter writer(spill.dir, config_.trace_start);

  const std::size_t budget_records = std::max<std::size_t>(
      spill.max_buffer_bytes / sizeof(LogRecord), std::size_t{64} * 1024);
  const std::size_t users_per_chunk =
      std::max<std::size_t>(spill.users_per_chunk, 1);

  SpillSummary sum;
  sum.users = users.size();

  std::vector<LogRecord> buffer;
  const auto flush = [&] {
    if (buffer.empty()) return;
    std::stable_sort(buffer.begin(), buffer.end(), LogRecordTimeOrder);
    writer.WriteSortedSlice(buffer);
    ++sum.spills;
    if (slice_sink) {
      // Hand the sealed slice to the analysis side; a blocking sink is the
      // backpressure that keeps generation at the analysis rate.
      slice_sink(std::move(buffer));
      buffer = std::vector<LogRecord>();
    } else {
      buffer.clear();
      buffer.shrink_to_fit();
    }
  };

  const std::size_t n_chunks =
      (users.size() + users_per_chunk - 1) / users_per_chunk;
  const std::size_t window =
      std::max<std::size_t>(static_cast<std::size_t>(pool.threads()), 1) * 2;
  const auto emit_chunk = [&](std::size_t chunk) {
    const std::size_t begin = chunk * users_per_chunk;
    const std::size_t end =
        std::min(begin + users_per_chunk, users.size());
    std::vector<LogRecord> out;
    for (std::size_t i = begin; i < end; ++i) {
      const UserProfile& user = users[i];
      Rng user_rng = Rng::ForStream(session_root, user.user_id);
      // Plans are emitted and dropped — only the records survive.
      const std::vector<SessionPlan> planned =
          session_model.PlanUser(user, user_rng);
      for (const SessionPlan& s : planned)
        emitter.EmitSession(s, user_rng, out);
    }
    return out;
  };

  for (std::size_t next = 0; next < n_chunks; next += window) {
    const std::size_t batch = std::min(window, n_chunks - next);
    std::vector<std::vector<LogRecord>> emitted =
        ParallelMap<std::vector<LogRecord>>(
            pool, batch, [&](std::size_t i) { return emit_chunk(next + i); });
    for (auto& chunk : emitted) {
      // Flush *before* appending, so the buffer never reallocates past the
      // budget mid-append (the doubling growth of push_back would briefly
      // double the footprint otherwise).
      if (!buffer.empty() && buffer.size() + chunk.size() > budget_records)
        flush();
      sum.records += chunk.size();
      buffer.insert(buffer.end(), std::make_move_iterator(chunk.begin()),
                    std::make_move_iterator(chunk.end()));
      chunk = std::vector<LogRecord>();
    }
  }
  flush();
  writer.Finish();
  sum.run_files = writer.run_files();
  return sum;
}

}  // namespace mcloud::workload
