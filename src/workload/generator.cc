#include "workload/generator.h"

#include <algorithm>
#include <utility>

#include "util/merge.h"
#include "util/parallel.h"
#include "workload/calibration.h"
#include "workload/diurnal.h"
#include "workload/log_emitter.h"
#include "workload/session_model.h"

namespace mcloud::workload {

namespace {

/// Session order of the final workload: chronological, ties by user. Within
/// one (start, user_id) pair the per-user planning order is preserved by
/// stable sorting + stable merging.
bool SessionStartOrder(const SessionPlan& a, const SessionPlan& b) {
  if (a.start != b.start) return a.start < b.start;
  return a.user_id < b.user_id;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config) {}

Workload WorkloadGenerator::PlanAndEmit(
    std::vector<std::vector<LogRecord>>* trace_runs) const {
  const bool emit_logs = trace_runs != nullptr;
  ThreadPool pool(config_.threads);
  Rng rng(config_.seed);

  Workload w;
  PopulationBuilder population(config_.population);
  w.users = population.Build(rng, &pool);
  // Root key of all per-user session streams. Drawn after the population's
  // root so the two stream families never collide.
  const std::uint64_t session_root = rng.NextU64();

  const DiurnalPattern diurnal(cal::kHourOfDayWeights);
  SessionModelConfig smc;
  smc.trace_start = config_.trace_start;
  smc.days = config_.population.days;
  const SessionModel session_model(smc, diurnal);
  const FastLogEmitter emitter;

  // Shard users across the pool. Each user's sessions and records are drawn
  // from Rng::ForStream(session_root, user_id) — a pure function of the
  // seed and the user id — so the shard a user lands on cannot perturb any
  // stream. Every shard sorts its own run; a stable k-way merge then yields
  // exactly the stable sort of the user-ordered concatenation, independent
  // of the shard count.
  const std::size_t shards = ShardCount(pool, w.users.size());
  std::vector<std::vector<SessionPlan>> session_runs(shards);
  std::vector<std::vector<LogRecord>> local_runs(shards);

  ParallelForShards(
      pool, w.users.size(),
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        std::vector<SessionPlan>& sessions = session_runs[shard];
        std::vector<LogRecord>& trace = local_runs[shard];
        for (std::size_t i = begin; i < end; ++i) {
          const UserProfile& user = w.users[i];
          // Independent per-user stream: adding users or re-sharding never
          // perturbs the randomness of existing ones.
          Rng user_rng = Rng::ForStream(session_root, user.user_id);
          std::vector<SessionPlan> planned =
              session_model.PlanUser(user, user_rng);
          if (emit_logs) {
            for (const SessionPlan& s : planned)
              emitter.EmitSession(s, user_rng, trace);
          }
          sessions.insert(sessions.end(),
                          std::make_move_iterator(planned.begin()),
                          std::make_move_iterator(planned.end()));
        }
        std::stable_sort(sessions.begin(), sessions.end(),
                         SessionStartOrder);
        if (emit_logs)
          std::stable_sort(trace.begin(), trace.end(), LogRecordTimeOrder);
      });

  w.sessions = MergeSortedRuns(std::move(session_runs), SessionStartOrder);
  if (emit_logs) *trace_runs = std::move(local_runs);
  return w;
}

Workload WorkloadGenerator::Generate() const {
  std::vector<std::vector<LogRecord>> trace_runs;
  Workload w = PlanAndEmit(&trace_runs);
  w.trace = MergeSortedRuns(std::move(trace_runs), LogRecordTimeOrder);
  return w;
}

ColumnarWorkload WorkloadGenerator::GenerateColumnar() const {
  std::vector<std::vector<LogRecord>> trace_runs;
  Workload w = PlanAndEmit(&trace_runs);

  std::size_t total = 0;
  for (const auto& run : trace_runs) total += run.size();
  TraceStore::Builder b;
  b.day_base = config_.trace_start;
  b.Reserve(total);
  // The stable k-way merge feeds the builder record-by-record; run storage
  // frees as runs drain, so peak memory is the columns + unexhausted tails
  // instead of two full AoS copies.
  MergeSortedRunsInto(std::move(trace_runs), LogRecordTimeOrder,
                      [&b](LogRecord&& r) { b.Append(r); });

  ColumnarWorkload out;
  out.users = std::move(w.users);
  out.sessions = std::move(w.sessions);
  out.trace = std::move(b).Build();
  return out;
}

Workload WorkloadGenerator::GeneratePlansOnly() const {
  return PlanAndEmit(nullptr);
}

}  // namespace mcloud::workload
