#include "workload/generator.h"

#include <algorithm>

#include "workload/calibration.h"
#include "workload/diurnal.h"
#include "workload/log_emitter.h"
#include "workload/session_model.h"

namespace mcloud::workload {

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config) {}

Workload WorkloadGenerator::GenerateImpl(bool emit_logs) const {
  Rng rng(config_.seed);

  Workload w;
  PopulationBuilder population(config_.population);
  w.users = population.Build(rng);

  const DiurnalPattern diurnal(cal::kHourOfDayWeights);
  SessionModelConfig smc;
  smc.trace_start = config_.trace_start;
  smc.days = config_.population.days;
  const SessionModel session_model(smc, diurnal);

  FastLogEmitter emitter;
  for (const UserProfile& user : w.users) {
    // Independent per-user stream: adding users never perturbs the
    // randomness of existing ones.
    Rng user_rng = rng.Fork(user.user_id);
    std::vector<SessionPlan> sessions =
        session_model.PlanUser(user, user_rng);
    if (emit_logs) {
      for (const SessionPlan& s : sessions)
        emitter.EmitSession(s, user_rng, w.trace);
    }
    w.sessions.insert(w.sessions.end(),
                      std::make_move_iterator(sessions.begin()),
                      std::make_move_iterator(sessions.end()));
  }

  std::sort(w.sessions.begin(), w.sessions.end(),
            [](const SessionPlan& a, const SessionPlan& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.user_id < b.user_id;
            });
  if (emit_logs)
    std::sort(w.trace.begin(), w.trace.end(), LogRecordTimeOrder);
  return w;
}

Workload WorkloadGenerator::Generate() const { return GenerateImpl(true); }

Workload WorkloadGenerator::GeneratePlansOnly() const {
  return GenerateImpl(false);
}

}  // namespace mcloud::workload
