// Simulation of one chunked HTTP transfer over a TCP connection.
//
// Reproduces the §4 / Fig 11 timeline: within a connection, chunks are
// requested strictly sequentially — a new chunk request is only issued after
// the HTTP-level acknowledgment ("HTTP 200 OK") of the previous chunk. The
// TCP data sender therefore idles between chunks for
//     idle = T_srv + T_clt + RTT,
// and if that idle exceeds the RTO, slow-start restart (RFC 5681 §4.1)
// collapses cwnd before the next chunk.
//
// Data transfer uses the classic window/round model: each round the sender
// emits w = min(cwnd, rwnd, remaining) bytes, which costs w/bandwidth
// serialization plus one RTT for the acknowledgment; cwnd then grows per
// RFC 5681. Intra-chunk application stalls (an Android pathology visible in
// Fig 13b as collapsing in-flight sizes) are modeled as pauses every
// `block` bytes, and also trigger SSAI when they exceed the RTO.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "tcp/congestion.h"
#include "tcp/rtt_estimator.h"
#include "util/rng.h"
#include "util/units.h"

namespace mcloud::tcp {

/// One sampled point of a sender-side packet trace (Fig 13).
struct PacketSample {
  Seconds t = 0;        ///< simulated time
  Bytes seq = 0;        ///< cumulative bytes sent on the connection
  Bytes inflight = 0;   ///< unacknowledged bytes at this instant
};
using PacketTrace = std::vector<PacketSample>;

/// Duration sampler (e.g. a T_clt distribution). Receives the flow's RNG.
using DurationSampler = std::function<Seconds(Rng&)>;

/// Intra-chunk application stall model: every `block` bytes the sending
/// application pauses for a sampled duration before handing TCP more data.
/// block == 0 disables stalls.
struct StallModel {
  Bytes block = 0;
  DurationSampler sample;
};

struct FlowConfig {
  Bytes mss = 1448;
  Bytes sender_window = 64 * kKiB;  ///< receiver-advertised window
  Seconds rtt = 0.100;              ///< base path round-trip time
  double bandwidth_bps = 8e6;       ///< bottleneck rate, bits per second
  CongestionConfig cc{};            ///< congestion-control knobs (incl. SSAI)
  bool record_trace = false;        ///< collect PacketTrace samples
  /// Probability that a large post-idle burst (possible only with SSAI off
  /// and no pacing) loses its tail and forces a retransmission timeout —
  /// §4.3's caveat against simply disabling slow-start-after-idle: "packet
  /// loss may happen, especially for the packets at the tail of the burst".
  double post_idle_burst_loss_prob = 0.0;
  /// Per-round background loss probability; recovered by fast retransmit
  /// (cwnd halving), not a timeout.
  double random_loss_prob = 0.0;
  /// Client-side per-chunk deadline (0 = none). When a chunk's elapsed
  /// transfer time crosses the deadline the client abandons the connection
  /// mid-chunk: the chunk is marked `aborted`, the flow ends, and remaining
  /// chunks are never issued. This is the mechanism behind the fault
  /// layer's RetryPolicy timeouts — the abandoned attempt pays only the
  /// deadline, not the full (possibly unbounded) transfer.
  Seconds chunk_deadline = 0;
};

/// Timing of one chunk within the flow.
struct ChunkTiming {
  Seconds request_at = 0;     ///< chunk HTTP request issued
  Seconds transfer_time = 0;  ///< first data byte to last data byte (t_tran)
  Seconds server_time = 0;    ///< T_srv applied to this chunk
  Seconds client_time = 0;    ///< T_clt preceding the *next* chunk
  Seconds idle_before = 0;    ///< sender idle gap before this chunk (0 for
                              ///< the first chunk of the connection)
  Seconds rto_at_idle = 0;    ///< RTO in force when the idle gap ended
  bool restarted = false;     ///< idle_before > RTO caused slow-start restart
  bool aborted = false;       ///< chunk_deadline hit; transfer abandoned
  Bytes bytes = 0;
};

struct FlowResult {
  std::vector<ChunkTiming> chunks;
  PacketTrace trace;
  Seconds duration = 0;            ///< total flow time
  std::uint64_t restarts = 0;      ///< slow-start restarts (incl. stalls)
  std::uint64_t timeouts = 0;      ///< burst-loss retransmission timeouts
  std::uint64_t fast_retransmits = 0;
  bool aborted = false;            ///< flow ended on a chunk-deadline abort
  Seconds avg_rtt = 0;             ///< mean of per-round RTT samples
};

/// Simulates the data-sender side of one TCP connection carrying a sequence
/// of chunk transfers. Direction-agnostic: for storage flows the client is
/// the sender (sender_window = the server's 64 KB advertisement); for
/// retrieval flows the server is the sender (sender_window = the client's
/// scaled window).
class FlowSimulator {
 public:
  explicit FlowSimulator(const FlowConfig& config);

  /// Run a flow transferring `chunk_sizes` in order. `sample_tsrv` and
  /// `sample_tclt` produce the per-chunk server and client processing times
  /// that compose the inter-chunk idle; `stall` injects intra-chunk
  /// application pauses.
  [[nodiscard]] FlowResult Run(std::span<const Bytes> chunk_sizes,
                               const DurationSampler& sample_tsrv,
                               const DurationSampler& sample_tclt,
                               const StallModel& stall, Rng& rng) const;

  /// Allocation-free variant: resets `out` (keeping vector capacity) and
  /// fills it in place. A caller simulating millions of flows reuses one
  /// scratch FlowResult and stops paying two vector allocations per flow.
  void RunInto(std::span<const Bytes> chunk_sizes,
               const DurationSampler& sample_tsrv,
               const DurationSampler& sample_tclt, const StallModel& stall,
               Rng& rng, FlowResult& out) const;

 private:
  FlowConfig config_;
};

/// Convenience: split `file_size` into fixed-size chunks (the last one may
/// be short), as the service does for files larger than the chunk size.
[[nodiscard]] std::vector<Bytes> SplitIntoChunks(Bytes file_size,
                                                 Bytes chunk_size);

/// In-place variant of SplitIntoChunks: clears `out` (keeping capacity) and
/// appends the chunk sizes.
void SplitIntoChunksInto(Bytes file_size, Bytes chunk_size,
                         std::vector<Bytes>& out);

}  // namespace mcloud::tcp
