// RTT estimation and retransmission timeout per RFC 6298.
//
// §4.2 of the paper evaluates the idle time between chunk transmissions
// against the RTO, using the kernel formula
//     RTO = SRTT + max(200 ms, 4·RTTVAR)
// (the Linux lower bound of 200 ms on the variance term rather than RFC
// 6298's 1 s floor on the whole RTO). Both the exact estimator and the
// paper's closed-form approximation RTO ≈ RTT + max(200 ms, 2·RTT) are
// provided.
#pragma once

#include "util/units.h"

namespace mcloud::tcp {

class RttEstimator {
 public:
  /// `min_var_term` is the floor on the 4·RTTVAR term (200 ms in Linux).
  explicit RttEstimator(Seconds min_var_term = 0.200)
      : min_var_term_(min_var_term) {}

  /// Feed one RTT measurement (seconds).
  void Update(Seconds rtt_sample);

  [[nodiscard]] bool HasSample() const { return has_sample_; }
  [[nodiscard]] Seconds Srtt() const { return srtt_; }
  [[nodiscard]] Seconds RttVar() const { return rttvar_; }

  /// Current retransmission timeout. Before any sample: RFC 6298's initial
  /// 1 s.
  [[nodiscard]] Seconds Rto() const;

 private:
  Seconds min_var_term_;
  Seconds srtt_ = 0;
  Seconds rttvar_ = 0;
  bool has_sample_ = false;
};

}  // namespace mcloud::tcp
