// TCP congestion control (RFC 5681) with slow-start restart after idle.
//
// This is the mechanism behind the paper's headline §4 finding: RFC 5681
// recommends resetting cwnd to the restart window and re-entering slow start
// when the connection has been idle longer than one RTO. Android clients
// idle between chunks for longer than the RTO in ~60% of gaps (vs 18% on
// iOS), so their chunks repeatedly pay the slow-start ramp.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace mcloud::tcp {

struct CongestionConfig {
  Bytes mss = 1448;                 ///< sender maximum segment size
  Bytes initial_window_segments = 10;  ///< IW10 (RFC 6928)
  bool slow_start_after_idle = true;   ///< RFC 5681 §4.1 restart behaviour
  /// Pace out the post-idle window instead of bursting (the §4.3
  /// alternative the paper cites [28]: keep cwnd but restart the ACK clock
  /// by pacing, avoiding both the slow-start ramp and the burst loss).
  bool pace_after_idle = false;
};

class CongestionController {
 public:
  explicit CongestionController(const CongestionConfig& config);

  [[nodiscard]] Bytes Cwnd() const { return cwnd_; }
  [[nodiscard]] Bytes Ssthresh() const { return ssthresh_; }
  [[nodiscard]] bool InSlowStart() const { return cwnd_ < ssthresh_; }
  [[nodiscard]] Bytes Mss() const { return config_.mss; }
  [[nodiscard]] Bytes InitialWindow() const {
    return config_.mss * config_.initial_window_segments;
  }

  /// `bytes` of new data were cumulatively acknowledged.
  void OnAck(Bytes bytes);

  /// Retransmission timeout: ssthresh = max(flight/2, 2·MSS), cwnd = 1 MSS
  /// (RFC 5681 §3.1).
  void OnTimeout(Bytes flight_size);

  /// Triple-duplicate-ACK fast retransmit: ssthresh = max(flight/2, 2·MSS),
  /// cwnd = ssthresh (simplified fast recovery).
  void OnLoss(Bytes flight_size);

  /// The sender was idle for `idle` with retransmission timer `rto`.
  /// If SSAI is enabled and idle > rto, cwnd collapses to the restart window
  /// (RFC 5681 §4.1: RW = min(IW, cwnd)) and slow start resumes.
  /// Returns true iff a restart happened.
  bool OnIdle(Seconds idle, Seconds rto);

  /// Whether the next window after an idle longer than the RTO must be
  /// paced rather than burst (only meaningful with pace_after_idle and SSAI
  /// disabled, i.e. when an un-shrunk cwnd survives the idle).
  [[nodiscard]] bool PacingArmed() const { return pacing_armed_; }
  /// The paced window was sent; disarm until the next long idle.
  void PacingApplied() { pacing_armed_ = false; }

  [[nodiscard]] std::uint64_t SlowStartRestarts() const { return restarts_; }

 private:
  CongestionConfig config_;
  Bytes cwnd_;
  Bytes ssthresh_;
  Bytes acked_since_growth_ = 0;  ///< CA byte counter (RFC 3465 style)
  std::uint64_t restarts_ = 0;
  bool pacing_armed_ = false;
};

}  // namespace mcloud::tcp
