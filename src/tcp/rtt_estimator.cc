#include "tcp/rtt_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace mcloud::tcp {

void RttEstimator::Update(Seconds rtt_sample) {
  MCLOUD_REQUIRE(rtt_sample > 0, "RTT samples must be positive");
  if (!has_sample_) {
    // RFC 6298 (2.2): SRTT = R, RTTVAR = R/2.
    srtt_ = rtt_sample;
    rttvar_ = rtt_sample / 2.0;
    has_sample_ = true;
    return;
  }
  // RFC 6298 (2.3): alpha = 1/8, beta = 1/4.
  constexpr double kAlpha = 1.0 / 8.0;
  constexpr double kBeta = 1.0 / 4.0;
  rttvar_ = (1.0 - kBeta) * rttvar_ + kBeta * std::abs(srtt_ - rtt_sample);
  srtt_ = (1.0 - kAlpha) * srtt_ + kAlpha * rtt_sample;
}

Seconds RttEstimator::Rto() const {
  if (!has_sample_) return 1.0;  // RFC 6298 (2.1) initial RTO
  return srtt_ + std::max(min_var_term_, 4.0 * rttvar_);
}

}  // namespace mcloud::tcp
