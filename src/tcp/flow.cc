#include "tcp/flow.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace mcloud::tcp {

FlowSimulator::FlowSimulator(const FlowConfig& config) : config_(config) {
  MCLOUD_REQUIRE(config.mss > 0, "MSS must be positive");
  MCLOUD_REQUIRE(config.sender_window >= config.mss,
                 "receiver window below one MSS");
  MCLOUD_REQUIRE(config.rtt > 0, "RTT must be positive");
  MCLOUD_REQUIRE(config.bandwidth_bps > 0, "bandwidth must be positive");
}

std::vector<Bytes> SplitIntoChunks(Bytes file_size, Bytes chunk_size) {
  std::vector<Bytes> chunks;
  SplitIntoChunksInto(file_size, chunk_size, chunks);
  return chunks;
}

void SplitIntoChunksInto(Bytes file_size, Bytes chunk_size,
                         std::vector<Bytes>& out) {
  MCLOUD_REQUIRE(chunk_size > 0, "chunk size must be positive");
  MCLOUD_REQUIRE(file_size > 0, "file size must be positive");
  out.clear();
  out.resize(static_cast<std::size_t>(file_size / chunk_size), chunk_size);
  if (const Bytes tail = file_size % chunk_size; tail > 0)
    out.push_back(tail);
}

FlowResult FlowSimulator::Run(std::span<const Bytes> chunk_sizes,
                              const DurationSampler& sample_tsrv,
                              const DurationSampler& sample_tclt,
                              const StallModel& stall, Rng& rng) const {
  FlowResult result;
  RunInto(chunk_sizes, sample_tsrv, sample_tclt, stall, rng, result);
  return result;
}

void FlowSimulator::RunInto(std::span<const Bytes> chunk_sizes,
                            const DurationSampler& sample_tsrv,
                            const DurationSampler& sample_tclt,
                            const StallModel& stall, Rng& rng,
                            FlowResult& result) const {
  MCLOUD_REQUIRE(!chunk_sizes.empty(), "flow needs at least one chunk");
  MCLOUD_REQUIRE(sample_tsrv != nullptr && sample_tclt != nullptr,
                 "processing-time samplers are required");
  if (stall.block > 0)
    MCLOUD_REQUIRE(stall.sample != nullptr, "stall model needs a sampler");

  const double bandwidth_Bps = config_.bandwidth_bps / 8.0;
  CongestionController cc(config_.cc);
  RttEstimator rtt_est;

  result.chunks.clear();
  result.trace.clear();
  result.duration = 0;
  result.restarts = 0;
  result.timeouts = 0;
  result.fast_retransmits = 0;
  result.aborted = false;
  result.avg_rtt = 0;
  result.chunks.reserve(chunk_sizes.size());

  Seconds now = 0;
  Bytes seq = 0;              // cumulative bytes sent on the connection
  double rtt_sum = 0;
  std::uint64_t rtt_samples = 0;

  auto record = [&](Seconds t, Bytes inflight) {
    if (config_.record_trace)
      result.trace.push_back(PacketSample{t, seq, inflight});
  };

  // Establish the connection: SYN handshake costs one RTT and yields the
  // first RTT sample, as a real kernel would have before any data moves.
  rtt_est.Update(config_.rtt);
  now += config_.rtt;
  record(now, 0);

  Seconds idle_started = now;  // sender last went quiet at this instant
  bool first_chunk = true;

  for (Bytes chunk : chunk_sizes) {
    MCLOUD_REQUIRE(chunk > 0, "chunk sizes must be positive");
    ChunkTiming timing;
    timing.bytes = chunk;

    // --- Idle gap before this chunk (Fig 11): the previous chunk's
    // application-level acknowledgment round plus processing times have
    // elapsed; decide whether the congestion window survived it.
    bool post_idle = false;
    if (!first_chunk) {
      timing.idle_before = now - idle_started;
      timing.rto_at_idle = rtt_est.Rto();
      timing.restarted = cc.OnIdle(timing.idle_before, timing.rto_at_idle);
      post_idle = timing.idle_before > timing.rto_at_idle;
    }
    first_chunk = false;

    timing.request_at = now;
    // The HTTP chunk request reaches the receiver in half an RTT; data
    // starts flowing immediately after (request and data pipeline on the
    // same connection for the data sender).
    const Seconds transfer_start = now;

    Bytes remaining = chunk;
    Bytes stall_progress = 0;  // bytes handed to TCP since the last stall

    while (remaining > 0) {
      // Client-side chunk deadline: the fault layer's retry timer fires and
      // the client tears the connection down mid-chunk.
      if (config_.chunk_deadline > 0 &&
          now - transfer_start >= config_.chunk_deadline) {
        timing.aborted = true;
        break;
      }
      Bytes w = std::min({static_cast<Bytes>(cc.Cwnd()),
                          config_.sender_window, remaining});
      w = std::max(w, std::min(remaining, static_cast<Bytes>(config_.mss)));
      const Seconds serialize = static_cast<double>(w) / bandwidth_Bps;
      const Seconds round_rtt = config_.rtt + serialize;

      // Post-idle handling when the window survived the idle (SSAI off):
      // either pace the burst out over an extra RTT, or risk losing its
      // tail to a drop-tail queue and paying a full retransmission timeout.
      Seconds pacing_cost = 0;
      if (post_idle && w > cc.InitialWindow()) {
        if (cc.PacingArmed()) {
          pacing_cost = config_.rtt;  // spread the window over one RTT
          cc.PacingApplied();
        } else if (config_.post_idle_burst_loss_prob > 0 &&
                   rng.Bernoulli(config_.post_idle_burst_loss_prob)) {
          // The burst's tail is lost; the cumulative ACK stalls and the
          // sender waits out the RTO, then slow-starts the tail again.
          const Bytes delivered = w / 2;
          record(now, w);
          now += rtt_est.Rto();
          seq += delivered;
          remaining -= delivered;
          cc.OnTimeout(w);
          ++result.timeouts;
          post_idle = false;
          record(now, 0);
          continue;
        }
      }
      post_idle = false;

      record(now, w);  // window just emitted: w bytes in flight
      now += round_rtt + pacing_cost;
      seq += w;
      remaining -= w;
      record(now, 0);  // cumulative ACK drained the window

      // Background loss: one round of fast-retransmit recovery.
      if (config_.random_loss_prob > 0 &&
          rng.Bernoulli(config_.random_loss_prob)) {
        cc.OnLoss(w);
        ++result.fast_retransmits;
        now += config_.rtt;
      }

      cc.OnAck(w);
      // RTT measurements are per-packet (propagation + one segment's
      // serialization), not per-window: a kernel timestamps individual
      // segments, so the advertised-window-sized bursts above do not inflate
      // SRTT — and therefore do not inflate the RTO that gates slow-start
      // restart after idle.
      const Seconds packet_rtt =
          config_.rtt + static_cast<double>(config_.mss) / bandwidth_Bps;
      rtt_est.Update(packet_rtt);
      rtt_sum += packet_rtt;
      ++rtt_samples;

      // Application stalls: the sending app pauses roughly every
      // `stall.block` bytes before providing more data; long pauses
      // collapse cwnd exactly like inter-chunk idles. The stall points
      // crossed by this round are charged after it — note they never cap
      // the TCP window itself, so a larger advertised window still helps.
      if (stall.block > 0 && remaining > 0) {
        stall_progress += w;
        while (stall_progress >= stall.block && remaining > 0) {
          stall_progress -= stall.block;
          const Seconds pause = std::max(0.0, stall.sample(rng));
          if (pause > 0) {
            now += pause;
            cc.OnIdle(pause, rtt_est.Rto());
            record(now, 0);
          }
        }
      }
    }

    timing.transfer_time = now - transfer_start;

    if (timing.aborted) {
      // The connection is gone: no server acknowledgment, no next chunk.
      result.chunks.push_back(timing);
      result.aborted = true;
      break;
    }

    // Server processes the chunk (stores it / prepares the next), then the
    // HTTP 200 OK travels back; only then may the client prepare and issue
    // the next request. The TCP sender is idle throughout.
    idle_started = now;
    timing.server_time = std::max(0.0, sample_tsrv(rng));
    timing.client_time = std::max(0.0, sample_tclt(rng));
    now += timing.server_time + config_.rtt + timing.client_time;
    record(now, 0);

    result.chunks.push_back(timing);
  }

  result.duration = now;
  result.restarts = cc.SlowStartRestarts();
  result.avg_rtt =
      rtt_samples > 0 ? rtt_sum / static_cast<double>(rtt_samples)
                      : config_.rtt;
}

}  // namespace mcloud::tcp
