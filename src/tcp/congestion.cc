#include "tcp/congestion.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace mcloud::tcp {

CongestionController::CongestionController(const CongestionConfig& config)
    : config_(config),
      cwnd_(config.mss * config.initial_window_segments),
      ssthresh_(std::numeric_limits<Bytes>::max() / 2) {
  MCLOUD_REQUIRE(config.mss > 0, "MSS must be positive");
  MCLOUD_REQUIRE(config.initial_window_segments > 0,
                 "initial window must be positive");
}

void CongestionController::OnAck(Bytes bytes) {
  if (bytes == 0) return;
  if (InSlowStart()) {
    // RFC 5681 §3.1: cwnd += min(N, SMSS) per ACK; with cumulative ACKs we
    // grow by one MSS per full MSS acknowledged (ABC, RFC 3465, L=1).
    const Bytes growth = std::min(bytes, std::max<Bytes>(
        (bytes / config_.mss) * config_.mss, config_.mss));
    cwnd_ = std::min(cwnd_ + growth, ssthresh_ + config_.mss);
  } else {
    // Congestion avoidance: cwnd += MSS·MSS/cwnd per ACK, accumulated over
    // the acknowledged bytes: one MSS per cwnd-worth of ACKed data.
    acked_since_growth_ += bytes;
    while (acked_since_growth_ >= cwnd_) {
      acked_since_growth_ -= cwnd_;
      cwnd_ += config_.mss;
    }
  }
}

void CongestionController::OnTimeout(Bytes flight_size) {
  ssthresh_ = std::max(flight_size / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  ++restarts_;
}

void CongestionController::OnLoss(Bytes flight_size) {
  ssthresh_ = std::max(flight_size / 2, 2 * config_.mss);
  cwnd_ = ssthresh_;
}

bool CongestionController::OnIdle(Seconds idle, Seconds rto) {
  if (idle <= rto) return false;
  if (!config_.slow_start_after_idle) {
    // cwnd survives the idle; if pacing is configured, the next window must
    // be clocked out rather than burst into the network.
    pacing_armed_ = config_.pace_after_idle;
    return false;
  }
  // RFC 5681 §4.1: restart window RW = min(IW, cwnd); ssthresh unchanged,
  // so the sender slow-starts back toward its previous operating point.
  ssthresh_ = std::max(ssthresh_, cwnd_);
  cwnd_ = std::min(InitialWindow(), cwnd_);
  ++restarts_;
  return true;
}

}  // namespace mcloud::tcp
