// Discrete-event simulation core.
//
// Events are (time, sequence, callback) tuples; RunNext() pops the earliest
// event, advances the simulated clock, and runs it. Sequence numbers make
// execution order deterministic for simultaneous events (insertion order),
// which keeps every simulation reproducible from its seed.
//
// Storage layout: callbacks live in a pool of generation-counted slots and
// the scheduling order is kept in a 4-ary min-heap of 16-byte records that
// carry their own (time, sequence) sort keys, so sift comparisons walk
// contiguous memory and never dereference into the slot pool.
// An EventId packs {generation, slot index}, so Cancel() is a bounds check
// plus a generation compare — O(1), no hash lookups — and a recycled slot
// automatically invalidates every stale handle to its previous occupant.
// Cancellation stays lazy: a cancelled slot is marked dead (its callback is
// destroyed immediately) and discarded when it surfaces at the heap top, so
// the fault scheduler can install a full crash/restart timeline up front and
// retract the part beyond the simulation horizon.
//
// Callbacks are mcloud::EventCallback (48-byte small-buffer, move-only), so
// the steady-state schedule/run cycle performs no heap allocation once the
// pool and heap vectors have reached their high-water marks.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_callback.h"
#include "util/error.h"
#include "util/units.h"

namespace mcloud {

class EventQueue {
 public:
  using Callback = EventCallback;
  /// Handle for a scheduled event: {generation:32 | slot:32}. Valid until
  /// the event runs or is cancelled; handles to recycled slots are rejected
  /// by the generation check.
  using EventId = std::uint64_t;

  /// Lifetime counters, cheap enough to keep always-on. `peak_pending` is
  /// the high-water mark of live events, i.e. the pool size a shard needs.
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t peak_pending = 0;
  };

  /// Schedule `cb` at absolute simulated time `at` (must be >= Now()).
  EventId ScheduleAt(Seconds at, Callback cb);
  /// Schedule `cb` `delay` seconds from now.
  EventId ScheduleIn(Seconds delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Retract a pending event. Returns true iff the event was still pending
  /// (not yet run and not previously cancelled); a cancelled event is
  /// skipped silently and does not count toward Executed().
  bool Cancel(EventId id);

  [[nodiscard]] Seconds Now() const { return now_; }
  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool Empty() const { return live_ == 0; }
  /// Live (non-cancelled) events still scheduled.
  [[nodiscard]] std::size_t Pending() const { return live_; }
  [[nodiscard]] std::uint64_t Executed() const { return stats_.executed; }
  /// Events retracted via Cancel() over the queue's lifetime.
  [[nodiscard]] std::uint64_t Cancelled() const { return stats_.cancelled; }
  /// High-water mark of simultaneously pending live events.
  [[nodiscard]] std::uint64_t PeakPending() const {
    return stats_.peak_pending;
  }
  [[nodiscard]] const Stats& GetStats() const { return stats_; }

  /// Pop and run the earliest live event. Returns false if none remain.
  /// Cancelled events encountered on the way are discarded without running
  /// and without advancing the clock.
  bool RunNext();

  /// Run events until the queue is empty or `max_events` have executed.
  /// Returns the number executed by this call.
  std::uint64_t RunAll(std::uint64_t max_events = ~0ULL);

  /// Run events with time <= t, then advance the clock to exactly t.
  std::uint64_t RunUntil(Seconds t);

 private:
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;  ///< bumped on run/cancel; stale ids never match
    bool live = false;
  };

  /// Heap record: the sort keys travel with the heap entry so sift
  /// comparisons stay in the contiguous heap array. A slot referenced by a
  /// heap item is never recycled before that item is popped or discarded,
  /// so the slot index alone identifies the callback. To keep the record at
  /// 16 bytes (four children per cache-line pair), the schedule sequence and
  /// the slot index share one word: key = seq << kSlotBits | slot. Sequence
  /// numbers are unique, so ordering by key at equal times is exactly
  /// ordering by seq — execution order is unchanged by the packing.
  struct HeapItem {
    Seconds at = 0;
    std::uint64_t key = 0;  ///< seq:40 | slot:24
  };

  /// Bits of the heap key reserved for the slot index. Caps the pool at
  /// 2^24 simultaneously pending events per queue (a shard holds thousands)
  /// and the lifetime schedule count at 2^40 events; both enforced.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kMaxSlots = 1ULL << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = 1ULL << (64 - kSlotBits);

  static EventId MakeId(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  static std::uint32_t GenOf(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint32_t SlotOf(EventId id) {
    return static_cast<std::uint32_t>(id);
  }

  /// Strict-weak ordering by (at, key); key's high bits are seq, so ties in
  /// time resolve FIFO. Written branch-free: sift comparisons see random
  /// priorities, where a conditional branch mispredicts about half the time.
  [[nodiscard]] static bool Earlier(const HeapItem& a, const HeapItem& b) {
    return (a.at < b.at) |
           (static_cast<int>(a.at == b.at) & static_cast<int>(a.key < b.key));
  }

  static std::uint32_t SlotOfItem(const HeapItem& item) {
    return static_cast<std::uint32_t>(item.key & (kMaxSlots - 1));
  }

  /// Minimal 64-byte-aligned allocator for the heap array, so a 4-child
  /// group (4 x 16 bytes) occupies exactly one cache line (see kHeapPad).
  template <typename T>
  struct CacheAlignedAlloc {
    using value_type = T;
    CacheAlignedAlloc() = default;
    template <typename U>
    CacheAlignedAlloc(const CacheAlignedAlloc<U>&) noexcept {}  // NOLINT
    T* allocate(std::size_t n) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{64}));
    }
    void deallocate(T* p, std::size_t n) noexcept {
      ::operator delete(p, n * sizeof(T), std::align_val_t{64});
    }
    template <typename U>
    bool operator==(const CacheAlignedAlloc<U>&) const noexcept {
      return true;
    }
  };

  /// The heap array keeps three unused pad records in front, so logical
  /// node j lives at heap_[kHeapPad + j] and the child group of j (logical
  /// 4j+1..4j+4, physical 4j+4..4j+7) starts at byte 64*(j+1) of the
  /// 64-byte-aligned array: a sift-down touches one cache line per level.
  static constexpr std::size_t kHeapPad = 3;

  [[nodiscard]] std::size_t HeapSize() const {
    return heap_.size() - kHeapPad;
  }
  [[nodiscard]] bool HeapEmpty() const { return heap_.size() == kHeapPad; }
  [[nodiscard]] const HeapItem& HeapAt(std::size_t j) const {
    return heap_[kHeapPad + j];
  }
  [[nodiscard]] HeapItem& HeapAt(std::size_t j) {
    return heap_[kHeapPad + j];
  }

  void HeapPush(const HeapItem& item);
  /// Remove and return the root record (heap must be non-empty).
  HeapItem HeapPopTop();
  /// Free cancelled slots sitting at the heap top.
  void DiscardCancelledTop();

  std::vector<Slot> slots_;
  /// 4-ary min-heap, keys inline, cache-line-aligned child groups.
  std::vector<HeapItem, CacheAlignedAlloc<HeapItem>> heap_ =
      std::vector<HeapItem, CacheAlignedAlloc<HeapItem>>(kHeapPad);
  std::vector<std::uint32_t> free_;  ///< recycled slot indices
  Seconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  Stats stats_;
};

}  // namespace mcloud
