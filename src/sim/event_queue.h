// Discrete-event simulation core.
//
// A minimal calendar queue: events are (time, sequence, callback) tuples;
// RunNext() pops the earliest event, advances the simulated clock, and runs
// it. Sequence numbers make execution order deterministic for simultaneous
// events (insertion order), which keeps every simulation reproducible from
// its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.h"
#include "util/units.h"

namespace mcloud {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute simulated time `at` (must be >= Now()).
  void ScheduleAt(Seconds at, Callback cb);
  /// Schedule `cb` `delay` seconds from now.
  void ScheduleIn(Seconds delay, Callback cb) {
    ScheduleAt(now_ + delay, std::move(cb));
  }

  [[nodiscard]] Seconds Now() const { return now_; }
  [[nodiscard]] bool Empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t Pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t Executed() const { return executed_; }

  /// Pop and run the earliest event. Returns false if the queue is empty.
  bool RunNext();

  /// Run events until the queue is empty or `max_events` have executed.
  /// Returns the number executed by this call.
  std::uint64_t RunAll(std::uint64_t max_events = ~0ULL);

  /// Run events with time <= t, then advance the clock to exactly t.
  std::uint64_t RunUntil(Seconds t);

 private:
  struct Entry {
    Seconds at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Seconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace mcloud
