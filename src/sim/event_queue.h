// Discrete-event simulation core.
//
// A minimal calendar queue: events are (time, sequence, callback) tuples;
// RunNext() pops the earliest event, advances the simulated clock, and runs
// it. Sequence numbers make execution order deterministic for simultaneous
// events (insertion order), which keeps every simulation reproducible from
// its seed.
//
// Scheduling returns an EventId that can be passed to Cancel(): a cancelled
// event never runs and never counts as executed. Cancellation is lazy — the
// entry stays in the heap until it reaches the top — so Cancel is O(1) and
// the fault scheduler can install a full crash/restart timeline up front and
// retract the part beyond the simulation horizon.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/error.h"
#include "util/units.h"

namespace mcloud {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  /// Handle for a scheduled event; valid until the event runs or is
  /// cancelled.
  using EventId = std::uint64_t;

  /// Schedule `cb` at absolute simulated time `at` (must be >= Now()).
  EventId ScheduleAt(Seconds at, Callback cb);
  /// Schedule `cb` `delay` seconds from now.
  EventId ScheduleIn(Seconds delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Retract a pending event. Returns true iff the event was still pending
  /// (not yet run and not previously cancelled); a cancelled event is
  /// skipped silently and does not count toward Executed().
  bool Cancel(EventId id);

  [[nodiscard]] Seconds Now() const { return now_; }
  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool Empty() const { return live_ == 0; }
  /// Live (non-cancelled) events still scheduled.
  [[nodiscard]] std::size_t Pending() const { return live_; }
  [[nodiscard]] std::uint64_t Executed() const { return executed_; }

  /// Pop and run the earliest live event. Returns false if none remain.
  /// Cancelled events encountered on the way are discarded without running
  /// and without advancing the clock.
  bool RunNext();

  /// Run events until the queue is empty or `max_events` have executed.
  /// Returns the number executed by this call.
  std::uint64_t RunAll(std::uint64_t max_events = ~0ULL);

  /// Run events with time <= t, then advance the clock to exactly t.
  std::uint64_t RunUntil(Seconds t);

 private:
  struct Entry {
    Seconds at;
    EventId seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Drop cancelled entries sitting at the top of the heap.
  void DiscardCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;    ///< scheduled, not yet run/cancelled
  std::unordered_set<EventId> cancelled_;  ///< awaiting lazy heap removal
  Seconds now_ = 0;
  EventId next_seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace mcloud
