#include "sim/event_queue.h"

#include <utility>

namespace mcloud {

void EventQueue::ScheduleAt(Seconds at, Callback cb) {
  MCLOUD_REQUIRE(at >= now_, "cannot schedule an event in the past");
  MCLOUD_REQUIRE(cb != nullptr, "event callback must not be null");
  heap_.push(Entry{at, next_seq_++, std::move(cb)});
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because the entry is popped immediately after.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = e.at;
  ++executed_;
  e.cb();
  return true;
}

std::uint64_t EventQueue::RunAll(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && RunNext()) ++n;
  return n;
}

std::uint64_t EventQueue::RunUntil(Seconds t) {
  MCLOUD_REQUIRE(t >= now_, "cannot run backwards");
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().at <= t) {
    RunNext();
    ++n;
  }
  now_ = t;
  return n;
}

}  // namespace mcloud
