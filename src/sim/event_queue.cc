#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace mcloud {

EventQueue::EventId EventQueue::ScheduleAt(Seconds at, Callback cb) {
  MCLOUD_REQUIRE(at >= now_, "cannot schedule an event in the past");
  MCLOUD_REQUIRE(cb != nullptr, "event callback must not be null");
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    MCLOUD_REQUIRE(slots_.size() < kMaxSlots, "event slot pool exhausted");
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  MCLOUD_REQUIRE(next_seq_ < kMaxSeq, "event sequence space exhausted");
  Slot& s = slots_[idx];
  s.cb = std::move(cb);
  s.live = true;
  HeapPush(HeapItem{at, (next_seq_++ << kSlotBits) | idx});
  ++live_;
  ++stats_.scheduled;
  stats_.peak_pending = std::max<std::uint64_t>(stats_.peak_pending, live_);
  return MakeId(s.gen, idx);
}

bool EventQueue::Cancel(EventId id) {
  const std::uint32_t idx = SlotOf(id);
  if (idx >= slots_.size()) return false;
  Slot& s = slots_[idx];
  if (!s.live || s.gen != GenOf(id)) return false;  // already ran or cancelled
  s.live = false;
  ++s.gen;       // stale handles die immediately, before the slot recycles
  s.cb.Reset();  // release captured resources now, not at lazy heap removal
  --live_;
  ++stats_.cancelled;
  return true;
}

void EventQueue::HeapPush(const HeapItem& item) {
  heap_.push_back(item);
  std::size_t i = HeapSize() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!Earlier(item, HeapAt(parent))) break;
    HeapAt(i) = HeapAt(parent);
    i = parent;
  }
  HeapAt(i) = item;
}

EventQueue::HeapItem EventQueue::HeapPopTop() {
  const HeapItem top = HeapAt(0);
  const HeapItem hole = heap_.back();
  heap_.pop_back();
  if (!HeapEmpty()) {
    // Sift the former last element down from the root. Each level's four
    // children share one cache line (see kHeapPad); prefetching the
    // contiguous grandchild block hides the next level's miss.
    const std::size_t n = HeapSize();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t gfirst = 4 * first + 1;
      if (gfirst < n) {
        const HeapItem* g = &HeapAt(gfirst);
        __builtin_prefetch(g);
        __builtin_prefetch(g + 4);
        __builtin_prefetch(g + 8);
        __builtin_prefetch(g + 12);
      }
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        // Ternary instead of `if`: selects with a conditional move, since
        // which child wins is data-random and would mispredict.
        best = Earlier(HeapAt(c), HeapAt(best)) ? c : best;
      }
      if (!Earlier(HeapAt(best), hole)) break;
      HeapAt(i) = HeapAt(best);
      i = best;
    }
    HeapAt(i) = hole;
  }
  return top;
}

void EventQueue::DiscardCancelledTop() {
  // Cancelled slots already had their generation bumped and callback
  // destroyed; here they just leave the heap and return to the free list.
  while (!HeapEmpty() && !slots_[SlotOfItem(HeapAt(0))].live) {
    free_.push_back(SlotOfItem(HeapPopTop()));
  }
}

bool EventQueue::RunNext() {
  DiscardCancelledTop();
  if (HeapEmpty()) return false;
  const HeapItem top = HeapPopTop();
  const std::uint32_t idx = SlotOfItem(top);
  Slot& s = slots_[idx];
  // Move the callback out and retire the slot *before* invoking: the
  // callback may schedule new events (possibly reusing this very slot) or
  // cancel others, and a stale handle to this event must already be dead.
  Callback cb = std::move(s.cb);
  now_ = top.at;
  s.live = false;
  ++s.gen;
  free_.push_back(idx);
  --live_;
  ++stats_.executed;
  cb();
  return true;
}

std::uint64_t EventQueue::RunAll(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && RunNext()) ++n;
  return n;
}

std::uint64_t EventQueue::RunUntil(Seconds t) {
  MCLOUD_REQUIRE(t >= now_, "cannot run backwards");
  std::uint64_t n = 0;
  DiscardCancelledTop();
  while (!HeapEmpty() && HeapAt(0).at <= t) {
    RunNext();
    ++n;
    DiscardCancelledTop();
  }
  now_ = t;
  return n;
}

}  // namespace mcloud
