#include "sim/event_queue.h"

#include <utility>

namespace mcloud {

EventQueue::EventId EventQueue::ScheduleAt(Seconds at, Callback cb) {
  MCLOUD_REQUIRE(at >= now_, "cannot schedule an event in the past");
  MCLOUD_REQUIRE(cb != nullptr, "event callback must not be null");
  const EventId id = next_seq_++;
  heap_.push(Entry{at, id, std::move(cb)});
  pending_.insert(id);
  ++live_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;  // already ran or cancelled
  cancelled_.insert(id);
  --live_;
  return true;
}

void EventQueue::DiscardCancelled() {
  while (!heap_.empty() && cancelled_.count(heap_.top().seq) > 0) {
    cancelled_.erase(heap_.top().seq);
    heap_.pop();
  }
}

bool EventQueue::RunNext() {
  DiscardCancelled();
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because the entry is popped immediately after.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_.erase(e.seq);
  --live_;
  now_ = e.at;
  ++executed_;
  e.cb();
  return true;
}

std::uint64_t EventQueue::RunAll(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && RunNext()) ++n;
  return n;
}

std::uint64_t EventQueue::RunUntil(Seconds t) {
  MCLOUD_REQUIRE(t >= now_, "cannot run backwards");
  std::uint64_t n = 0;
  DiscardCancelled();
  while (!heap_.empty() && heap_.top().at <= t) {
    RunNext();
    ++n;
    DiscardCancelled();
  }
  now_ = t;
  return n;
}

}  // namespace mcloud
