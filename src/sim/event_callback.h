// Small-buffer move-only callback for the event core.
//
// `std::function<void()>` heap-allocates for any capture larger than the
// implementation's tiny inline buffer (two pointers on libstdc++) and drags a
// copy-constructibility requirement along with it. Event callbacks in this
// codebase capture a handful of pointers plus a few integers — comfortably
// small, but over libstdc++'s limit — so the old queue paid one allocation
// per scheduled event. EventCallback keeps a 48-byte inline buffer, erases
// the callable through a static ops table (invoke / relocate / destroy
// function pointers; no vtable object), and is move-only, which lets it hold
// move-only captures (e.g. a pooled buffer) that std::function rejects.
// Callables that do not fit inline fall back to a single heap allocation,
// exactly like std::function, so correctness never depends on the size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace mcloud {

class EventCallback {
 public:
  /// Inline capture budget. Sized for the hot chunk-timer closures in
  /// cloud::StorageService (this pointer + flow state + a few ids) with room
  /// to spare; anything bigger silently takes the heap path.
  static constexpr std::size_t kInlineSize = 48;

  EventCallback() = default;
  EventCallback(std::nullptr_t) {}  // NOLINT: mirror std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT: implicit like std::function
    using D = std::decay_t<F>;
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  /// Destroy the held callable (if any) and become empty.
  void Reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const EventCallback& c, std::nullptr_t) {
    return !static_cast<bool>(c);
  }
  friend bool operator!=(const EventCallback& c, std::nullptr_t) {
    return static_cast<bool>(c);
  }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct the callable from `src` storage into `dst` storage and
    // destroy the source. Everything stored is nothrow-relocatable: inline
    // callables require nothrow move construction, heap callables just move
    // the owning pointer. Null means "memcpy the whole inline buffer" —
    // the fast path for trivially copyable captures (pointers + integers),
    // which skips an indirect call on the hot schedule/run cycle.
    void (*relocate)(void* dst, void* src) noexcept;
    // Null means trivially destructible: Reset() skips the indirect call.
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              D* from = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* p) noexcept {
              std::launder(reinterpret_cast<D*>(p))->~D();
            },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
  };

  void MoveFrom(EventCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate == nullptr) {
        // Trivially copyable capture: blind copy of the whole buffer beats
        // an indirect call that copies a prefix of it.
        __builtin_memcpy(storage_, other.storage_, kInlineSize);
      } else {
        other.ops_->relocate(storage_, other.storage_);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace mcloud
