#include "util/summary.h"

#include <algorithm>
#include <cmath>

namespace mcloud {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (n_ < 2) return 0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const {
  MCLOUD_REQUIRE(n_ > 0, "Min of empty sample");
  return min_;
}

double RunningStats::Max() const {
  MCLOUD_REQUIRE(n_ > 0, "Max of empty sample");
  return max_;
}

namespace {
double SortedQuantile(std::span<const double> sorted, double q) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double h = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}
}  // namespace

double Percentile(std::span<const double> xs, double p) {
  MCLOUD_REQUIRE(!xs.empty(), "Percentile of empty sample");
  MCLOUD_REQUIRE(p >= 0 && p <= 100, "percentile must be in [0,100]");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return SortedQuantile(copy, p / 100.0);
}

std::vector<double> Percentiles(std::span<const double> xs,
                                std::span<const double> ps) {
  MCLOUD_REQUIRE(!xs.empty(), "Percentiles of empty sample");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) {
    MCLOUD_REQUIRE(p >= 0 && p <= 100, "percentile must be in [0,100]");
    out.push_back(SortedQuantile(copy, p / 100.0));
  }
  return out;
}

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  MCLOUD_REQUIRE(!sorted_.empty(), "Ecdf of empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::Evaluate(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::Quantile(double q) const {
  MCLOUD_REQUIRE(q >= 0 && q <= 1, "quantile must be in [0,1]");
  return SortedQuantile(sorted_, q);
}

std::vector<double> Ecdf::OnGrid(std::span<const double> grid) const {
  std::vector<double> out;
  out.reserve(grid.size());
  for (double x : grid) out.push_back(Evaluate(x));
  return out;
}

std::vector<double> LogGrid(double lo, double hi, std::size_t points) {
  MCLOUD_REQUIRE(lo > 0 && hi > lo, "LogGrid needs 0 < lo < hi");
  MCLOUD_REQUIRE(points >= 2, "LogGrid needs >= 2 points");
  std::vector<double> out;
  out.reserve(points);
  const double step =
      std::log(hi / lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i)
    out.push_back(lo * std::exp(step * static_cast<double>(i)));
  return out;
}

std::vector<double> LinGrid(double lo, double hi, std::size_t points) {
  MCLOUD_REQUIRE(hi > lo, "LinGrid needs lo < hi");
  MCLOUD_REQUIRE(points >= 2, "LinGrid needs >= 2 points");
  std::vector<double> out;
  out.reserve(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i)
    out.push_back(lo + step * static_cast<double>(i));
  return out;
}

}  // namespace mcloud
