// Deterministic random number generation.
//
// All stochastic components of mcloud take an explicit Rng so that every
// experiment is reproducible from a single seed. Rng wraps a SplitMix64-seeded
// xoshiro256** engine (implemented here so the bit stream is stable across
// standard library versions, unlike std::mt19937_64's distributions).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

#include "util/error.h"

namespace mcloud {

/// SplitMix64 mixing step (Steele, Lea & Flood; public domain reference
/// algorithm). Bijective on uint64 with strong avalanche — the basis of both
/// engine seeding and the stateless per-stream key derivation below.
[[nodiscard]] constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Deterministic across platforms; passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    // SplitMix64 to expand the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      s = SplitMix64(x);
      x += 0x9E3779B97F4A7C15ULL;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Seedable RNG with the sampling helpers the generators and simulators need.
/// Distribution sampling is implemented inline (inverse-CDF / Box–Muller /
/// Marsaglia) rather than via <random> distributions to keep the stream
/// identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d636c6f7564ULL) : engine_(seed) {}

  /// Derive an independent child stream (e.g. one per simulated user).
  /// NOTE: Fork advances the parent engine, so the derived stream depends on
  /// *when* it is forked. Order-independent consumers (the workload
  /// generator's per-user streams) must use ForStream instead.
  [[nodiscard]] Rng Fork(std::uint64_t stream_id) {
    return Rng(engine_() ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1)));
  }

  /// Stateless child-stream derivation: the stream for (root_seed,
  /// stream_id) is a pure SplitMix64 hash of both, so it does not depend on
  /// any engine state or on the order streams are derived in. This is what
  /// makes sharding users across threads — in any order — reproduce the
  /// serial byte stream exactly.
  [[nodiscard]] static Rng ForStream(std::uint64_t root_seed,
                                     std::uint64_t stream_id) {
    return Rng(SplitMix64(SplitMix64(root_seed) ^ SplitMix64(~stream_id)));
  }

  std::uint64_t NextU64() { return engine_(); }

  /// Uniform in [0, 1).
  double Uniform() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }
  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }
  /// Uniform integer in [0, n). The n > 0 precondition is a debug-only
  /// check: every production call site passes a structurally non-empty
  /// range, and the branch showed up in generation profiles.
  std::uint64_t UniformInt(std::uint64_t n) {
#ifndef NDEBUG
    MCLOUD_REQUIRE(n > 0, "UniformInt needs a non-empty range");
#endif
    // Lemire's unbiased bounded generation.
    std::uint64_t x = engine_();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = engine_();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box–Muller (cached second value).
  double Normal() {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = Uniform();
    while (u1 <= 0.0) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
  }
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Exponential with the given mean (NOT rate).
  double ExponentialMean(double mean) {
    MCLOUD_REQUIRE(mean > 0, "exponential mean must be positive");
    double u = Uniform();
    while (u <= 0.0) u = Uniform();
    return -mean * std::log(u);
  }

  /// Log-normal with parameters of the underlying normal.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  // ---- batched draws ----
  // Each Fill* consumes the engine exactly as out.size() scalar calls of
  // the corresponding sampler would — including the Box–Muller cache
  // carried in from earlier scalar Normal()s and left behind for later
  // ones — so batched and scalar call sites are freely interchangeable
  // without perturbing any stream (pinned by tests/test_rng.cc).

  /// out[i] = Uniform() for each i, in order.
  void FillUniform(std::span<double> out) {
    for (double& v : out) v = Uniform();
  }

  /// out[i] = Normal() for each i, in order. Amortizes the cache branch
  /// and pipelines the transcendental pairs.
  void FillNormal(std::span<double> out) {
    std::size_t i = 0;
    const std::size_t n = out.size();
    if (i < n && have_cached_normal_) {
      have_cached_normal_ = false;
      out[i++] = cached_normal_;
    }
    while (i < n) {
      double u1 = Uniform();
      while (u1 <= 0.0) u1 = Uniform();
      const double u2 = Uniform();
      const double r = std::sqrt(-2.0 * std::log(u1));
      const double theta = 2.0 * std::numbers::pi * u2;
      out[i++] = r * std::cos(theta);
      const double second = r * std::sin(theta);
      if (i < n) {
        out[i++] = second;
      } else {
        cached_normal_ = second;
        have_cached_normal_ = true;
      }
    }
  }

  /// out[i] = LogNormal(mu, sigma) for each i, in order (bit-identical to
  /// the scalar draw: exp(mu + sigma * z) over a FillNormal batch).
  void FillLogNormal(double mu, double sigma, std::span<double> out) {
    FillNormal(out);
    for (double& v : out) v = std::exp(mu + sigma * v);
  }

  /// Pareto (type I) with scale xm > 0 and shape alpha > 0.
  double Pareto(double xm, double alpha) {
    MCLOUD_REQUIRE(xm > 0 && alpha > 0, "invalid Pareto parameters");
    double u = Uniform();
    while (u <= 0.0) u = Uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Pick an index in [0, weights.size()) proportionally to `weights`.
  std::size_t PickWeighted(std::span<const double> weights) {
    MCLOUD_REQUIRE(!weights.empty(), "PickWeighted needs weights");
    double total = 0;
    for (double w : weights) {
      MCLOUD_REQUIRE(w >= 0, "weights must be non-negative");
      total += w;
    }
    MCLOUD_REQUIRE(total > 0, "weights must not all be zero");
    double r = Uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (r < weights[i]) return i;
      r -= weights[i];
    }
    return weights.size() - 1;  // numeric edge: fall into the last bucket
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = UniformInt(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  explicit Rng(Xoshiro256 engine) : engine_(engine) {}
  Xoshiro256 engine_;
  double cached_normal_ = 0;
  bool have_cached_normal_ = false;
};

}  // namespace mcloud
