#include "util/md5.h"

#include <algorithm>
#include <cstring>

#include "util/error.h"

namespace mcloud {
namespace {

// Per-round left-rotate amounts (RFC 1321 §3.4).
constexpr std::array<std::uint32_t, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i + 1)|) (RFC 1321 §3.4).
constexpr std::array<std::uint32_t, 64> kSine = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr std::uint32_t Rotl(std::uint32_t x, std::uint32_t n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

Md5::Md5() { Reset(); }

void Md5::Reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  bit_count_ = 0;
  buffer_len_ = 0;
  finalized_ = false;
}

void Md5::ProcessBlock(const std::uint8_t* block) {
  std::array<std::uint32_t, 16> m;
  for (std::size_t i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[i * 4]) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];

  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t f;
    std::uint32_t g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + Rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::Update(std::span<const std::uint8_t> data) {
  MCLOUD_REQUIRE(!finalized_, "Md5::Update after Finalize without Reset");
  bit_count_ += static_cast<std::uint64_t>(data.size()) * 8;

  std::size_t offset = 0;
  // Fill a partially filled buffer first.
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
  // Whole blocks straight from the input.
  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  // Stash the tail.
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

void Md5::Update(std::string_view data) {
  Update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Md5Digest Md5::Finalize() {
  MCLOUD_REQUIRE(!finalized_, "Md5::Finalize called twice");
  const std::uint64_t total_bits = bit_count_;

  // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length (LE).
  const std::uint8_t one = 0x80;
  Update(std::span<const std::uint8_t>(&one, 1));
  const std::array<std::uint8_t, 64> zeros{};
  while (buffer_len_ != 56) {
    const std::size_t pad =
        buffer_len_ < 56 ? 56 - buffer_len_ : 64 - buffer_len_;
    Update(std::span<const std::uint8_t>(zeros.data(), pad));
  }
  std::array<std::uint8_t, 8> len_bytes;
  for (std::size_t i = 0; i < 8; ++i)
    len_bytes[i] = static_cast<std::uint8_t>((total_bits >> (8 * i)) & 0xff);
  Update(len_bytes);
  MCLOUD_CHECK(buffer_len_ == 0, "padding must complete the final block");

  Md5Digest digest;
  for (std::size_t i = 0; i < 4; ++i) {
    digest.bytes[i * 4] = static_cast<std::uint8_t>(state_[i] & 0xff);
    digest.bytes[i * 4 + 1] = static_cast<std::uint8_t>((state_[i] >> 8) & 0xff);
    digest.bytes[i * 4 + 2] =
        static_cast<std::uint8_t>((state_[i] >> 16) & 0xff);
    digest.bytes[i * 4 + 3] =
        static_cast<std::uint8_t>((state_[i] >> 24) & 0xff);
  }
  finalized_ = true;
  return digest;
}

Md5Digest Md5::Hash(std::string_view data) {
  Md5 h;
  h.Update(data);
  return h.Finalize();
}

Md5Digest Md5::Hash(std::span<const std::uint8_t> data) {
  Md5 h;
  h.Update(data);
  return h.Finalize();
}

std::string Md5Digest::ToHex() const {
  static constexpr char kHexChars[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexChars[b >> 4]);
    out.push_back(kHexChars[b & 0xf]);
  }
  return out;
}

std::uint64_t Md5Digest::Low64() const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return v;
}

}  // namespace mcloud
