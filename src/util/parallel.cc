#include "util/parallel.h"

#include <algorithm>

#include "util/error.h"

namespace mcloud {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ClampThreadsToHardware(int requested) {
  return std::min(ResolveThreads(requested), ResolveThreads(0));
}

ThreadPool::ThreadPool(int threads) : threads_(ResolveThreads(threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::DrainBatch(std::unique_lock<std::mutex>& lock) {
  while (next_ < count_) {
    const std::size_t i = next_++;
    lock.unlock();
    try {
      (*body_)(i);
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      ++done_;
      continue;
    }
    lock.lock();
    ++done_;
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_batch = 0;
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ || (batch_id_ != seen_batch && next_ < count_);
    });
    if (stop_) return;
    seen_batch = batch_id_;
    DrainBatch(lock);
    if (done_ == count_) done_cv_.notify_all();
  }
}

void ThreadPool::Run(std::size_t count,
                     const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (threads_ == 1 || count == 1) {
    // Inline fast path: no synchronization, identical to serial execution.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  MCLOUD_REQUIRE(body_ == nullptr, "ThreadPool::Run is not reentrant");
  body_ = &body;
  count_ = count;
  next_ = 0;
  done_ = 0;
  error_ = nullptr;
  ++batch_id_;
  work_cv_.notify_all();

  // The calling thread participates in the batch.
  DrainBatch(lock);
  done_cv_.wait(lock, [&] { return done_ == count_; });

  body_ = nullptr;
  count_ = 0;
  next_ = 0;
  const std::exception_ptr error = error_;
  error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

std::size_t ShardCount(const ThreadPool& pool, std::size_t n) {
  return std::min<std::size_t>(static_cast<std::size_t>(pool.threads()), n);
}

void ParallelForShards(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t shards = ShardCount(pool, n);
  if (shards == 0) return;
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;  // first `extra` shards get +1
  pool.Run(shards, [&](std::size_t s) {
    const std::size_t begin = s * base + std::min(s, extra);
    const std::size_t end = begin + base + (s < extra ? 1 : 0);
    body(s, begin, end);
  });
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  ParallelForShards(pool, n,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) body(i);
                    });
}

void ParallelInvoke(ThreadPool& pool,
                    std::vector<std::function<void()>> tasks) {
  pool.Run(tasks.size(), [&](std::size_t i) { tasks[i](); });
}

}  // namespace mcloud
