// Fixed-size thread pool and static-sharding parallel loops.
//
// The generators and the analysis pipeline shard work across a small fixed
// pool; all parallel constructs here are *deterministic*: the decomposition
// of work into shards depends only on the input size, never on scheduling,
// so callers that merge shard results in shard order produce output
// independent of the number of threads (see DESIGN.md "Concurrency model").
//
// A pool of size 1 never spawns a worker thread: every construct runs inline
// on the calling thread, which keeps the `threads = 1` path exactly the
// serial code path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcloud {

/// `requested` if positive, otherwise std::thread::hardware_concurrency()
/// (at least 1 — hardware_concurrency() may return 0).
[[nodiscard]] int ResolveThreads(int requested);

/// ResolveThreads, additionally clamped to the hardware concurrency: asking
/// for more threads than the machine has cores oversubscribes CPU-bound
/// stages (measured: the fit stage ran 1.9x *slower* at --threads 4 on a
/// 1-core host) without buying determinism — results are thread-count
/// invariant either way, so wider than the hardware is pure loss.
[[nodiscard]] int ClampThreadsToHardware(int requested);

/// Fixed pool of `threads - 1` workers; the thread calling Run participates,
/// so a pool of size N runs batches on exactly N threads. Batches are
/// submitted one at a time (Run blocks until the batch completes), which is
/// all the generators need and keeps the synchronization trivial to audit
/// under ThreadSanitizer.
class ThreadPool {
 public:
  /// `threads` <= 0 resolves to hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const { return threads_; }

  /// Run tasks 0..count-1 by invoking body(i) across the pool; blocks until
  /// all complete. The first exception thrown by any task is rethrown here
  /// (remaining tasks still drain). Tasks must not call Run on the same
  /// pool recursively.
  void Run(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void WorkerLoop();
  /// Claims and runs tasks of the current batch until none remain.
  void DrainBatch(std::unique_lock<std::mutex>& lock);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a batch
  std::condition_variable done_cv_;   ///< Run waits for batch completion
  bool stop_ = false;
  std::uint64_t batch_id_ = 0;        ///< bumped per Run; wakes workers
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;             ///< tasks in the current batch
  std::size_t next_ = 0;              ///< next unclaimed task index
  std::size_t done_ = 0;              ///< completed tasks
  std::exception_ptr error_;          ///< first task exception
};

/// Contiguous static shards of [0, n): shard s covers [begin, end). At most
/// pool.threads() shards; every shard is non-empty. The shard *boundaries*
/// depend on the pool size, so use this only when downstream consumers are
/// insensitive to the decomposition (e.g. shard results are merged with a
/// stable merge, or reduced with an order-insensitive reduction).
void ParallelForShards(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t shard, std::size_t begin,
                             std::size_t end)>& body);

/// Number of shards ParallelForShards will use for `n` items — for sizing
/// per-shard result slots.
[[nodiscard]] std::size_t ShardCount(const ThreadPool& pool, std::size_t n);

/// Elementwise parallel loop: body(i) for i in [0, n), statically sharded.
/// Each index is processed exactly once; writes to disjoint elements of a
/// pre-sized output need no further synchronization.
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& body);

/// Map fn over [0, n) into a default-constructed vector<R>. Deterministic:
/// out[i] = fn(i) regardless of thread count.
template <typename R, typename Fn>
[[nodiscard]] std::vector<R> ParallelMap(ThreadPool& pool, std::size_t n,
                                         Fn&& fn) {
  std::vector<R> out(n);
  ParallelFor(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Run independent closures concurrently (the analysis pipeline's stage
/// DAG). With a pool of size 1 the tasks run inline, in order.
void ParallelInvoke(ThreadPool& pool,
                    std::vector<std::function<void()>> tasks);

}  // namespace mcloud
