// Stable LSD radix permutation sort over multi-component 64-bit keys.
//
// The workload generator's hot path sorts multi-million-record runs by
// (timestamp, user, device) and session runs by (start, user). Comparison
// sorting pays O(n log n) comparator calls, each touching a ~100-byte
// record; this sorter instead computes the *stable ascending permutation*
// of the rows from packed 16-byte (key, index) pairs in O(n) counting-sort
// passes, and the caller applies it with one gather per column. The result
// is provably the std::stable_sort order: every counting-sort pass is
// stable, components are processed least-significant first (classic LSD),
// and ties keep the input order because the pair index rides along.
//
// Three twists keep the pass count low without changing the order:
//   * Varying-bit compression. Before sorting a component, one scan computes
//     the OR and AND aggregates of its values; bit positions where all
//     values agree cannot influence the order, so only the varying bit
//     ranges are extracted (shift/mask, preserving significance order) into
//     a compact key. A one-week timestamp column collapses to ~20 bits (2
//     passes); a device-id column whose values straddle the PC range bit
//     (1<<48) collapses to its few populated ranges instead of 49 bits.
//     Extracting identical bit positions from every value is order-
//     preserving exactly because the dropped bits are equal everywhere.
//   * Key fusion. When the varying bits of ALL components fit in 64 —
//     always true for generator traces (≈20 ts + ≈17 user + ≈20 device) —
//     the components are packed into a single compressed key, most
//     significant component highest, and sorted in one run of digit
//     passes. Lexicographic order on the component tuple equals numeric
//     order on the fused key because the fields occupy disjoint bit
//     ranges in significance order; one pack loop and ~4 counting passes
//     replace the per-component pack + passes.
//   * Small-run cutoff. Below kSmallN rows the counting tables dwarf the
//     data; the sorter falls back to std::stable_sort on the permutation
//     with a lexicographic key comparator — the same order by definition.
//
// All scratch (pair buffers, counting tables, permutation) lives in the
// sorter object and is reused across calls, so steady-state sorting
// allocates nothing once high-water capacity is reached.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/error.h"

namespace mcloud {

/// One key component: a borrowed view of n unsigned or signed 64-bit
/// values. Signed values are mapped through a sign-flip bias so unsigned
/// digit comparison reproduces signed order.
struct RadixKey {
  const std::uint64_t* u64 = nullptr;
  const std::int64_t* i64 = nullptr;

  [[nodiscard]] static RadixKey U64(std::span<const std::uint64_t> c) {
    RadixKey k;
    k.u64 = c.data();
    return k;
  }
  [[nodiscard]] static RadixKey I64(std::span<const std::int64_t> c) {
    RadixKey k;
    k.i64 = c.data();
    return k;
  }

  [[nodiscard]] std::uint64_t at(std::size_t i) const {
    return u64 ? u64[i]
               : static_cast<std::uint64_t>(i64[i]) ^ (1ULL << 63);
  }
};

class StableRadixSorter {
 public:
  /// Rows below this go through std::stable_sort on the permutation (same
  /// order, no counting-table overhead). Exposed for the property tests.
  static constexpr std::size_t kSmallN = 128;

  /// Compute the stable ascending permutation of rows [0, n) under the
  /// lexicographic key (keys[0], keys[1], ...), keys[0] most significant.
  /// The returned span is owned by the sorter and valid until the next
  /// Sort call. perm[j] = index of the row ranked j.
  std::span<const std::uint32_t> Sort(std::size_t n,
                                      std::span<const RadixKey> keys) {
    MCLOUD_REQUIRE(n <= UINT32_MAX, "radix sort permutation is 32-bit");
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      perm_[i] = static_cast<std::uint32_t>(i);
    if (n < 2 || keys.empty()) return perm_;

    if (n < kSmallN) {
      std::stable_sort(perm_.begin(), perm_.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         for (const RadixKey& k : keys) {
                           const std::uint64_t x = k.at(a);
                           const std::uint64_t y = k.at(b);
                           if (x != y) return x < y;
                         }
                         return false;
                       });
      return perm_;
    }

    // Plan every component up front: one aggregate scan each, yielding the
    // varying-bit extraction runs and the compressed width.
    plans_.clear();
    runs_.clear();
    int total_bits = 0;
    for (const RadixKey& key : keys) {
      const ComponentPlan plan = PlanComponent(n, key);
      total_bits += plan.bits;
      plans_.push_back(plan);
    }
    if (total_bits == 0) return perm_;  // all rows equal: stable no-op

    if (total_bits <= 64) {
      FusedPass(n, keys, total_bits);
    } else {
      // LSD over components: least-significant component first; each
      // component pass is a stable sort of the current permutation.
      for (std::size_t c = keys.size(); c-- > 0;)
        if (plans_[c].bits > 0) ComponentPass(n, keys[c], plans_[c]);
    }
    return perm_;
  }

  /// Last permutation computed (same lifetime rules as Sort's result).
  [[nodiscard]] std::span<const std::uint32_t> perm() const { return perm_; }

 private:
  struct Pair {
    std::uint64_t key;
    std::uint32_t idx;
  };
  /// A contiguous run of varying bits: extract (v >> shift_in) & mask and
  /// place it at shift_out in the compressed key.
  struct BitRun {
    int shift_in;
    int shift_out;
    std::uint64_t mask;
  };
  /// One component's extraction plan: its BitRuns live in runs_[run_begin,
  /// run_end) and produce a `bits`-wide compressed value.
  struct ComponentPlan {
    std::size_t run_begin = 0;
    std::size_t run_end = 0;
    int bits = 0;
  };

  ComponentPlan PlanComponent(std::size_t n, const RadixKey& key) {
    // Aggregate scan: bit positions where every value agrees are constant
    // and cannot affect the order.
    std::uint64_t all_or = 0;
    std::uint64_t all_and = ~0ULL;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = key.at(i);
      all_or |= v;
      all_and &= v;
    }
    const std::uint64_t varying = all_or & ~all_and;

    ComponentPlan plan;
    plan.run_begin = runs_.size();
    int out_pos = 0;
    std::uint64_t rest = varying;
    while (rest != 0) {
      const int lo = std::countr_zero(rest);
      const std::uint64_t aligned = rest >> lo;
      const int len = std::countr_one(aligned);
      const std::uint64_t mask = len >= 64 ? ~0ULL : ((1ULL << len) - 1);
      runs_.push_back({lo, out_pos, mask});
      out_pos += len;
      rest &= ~(mask << lo);
    }
    plan.run_end = runs_.size();
    plan.bits = out_pos;
    return plan;
  }

  [[nodiscard]] std::uint64_t Compress(const RadixKey& key,
                                       const ComponentPlan& plan,
                                       std::uint32_t idx) const {
    const std::uint64_t v = key.at(idx);
    std::uint64_t ck = 0;
    for (std::size_t r = plan.run_begin; r < plan.run_end; ++r)
      ck |= ((v >> runs_[r].shift_in) & runs_[r].mask) << runs_[r].shift_out;
    return ck;
  }

  /// All components in one go: pack component c's compressed value above
  /// the combined width of the less-significant components c+1.., then run
  /// the digit passes once over the fused key.
  void FusedPass(std::size_t n, std::span<const RadixKey> keys,
                 int total_bits) {
    pairs_a_.resize(n);
    pairs_b_.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t idx = perm_[j];
      std::uint64_t fused = 0;
      for (std::size_t c = 0; c < keys.size(); ++c) {
        fused <<= plans_[c].bits;
        fused |= Compress(keys[c], plans_[c], idx);
      }
      pairs_a_[j] = {fused, idx};
    }
    CountingPasses(n, total_bits);
  }

  void ComponentPass(std::size_t n, const RadixKey& key,
                     const ComponentPlan& plan) {
    // Pack pairs in current permutation order; the index carries stability.
    pairs_a_.resize(n);
    pairs_b_.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t idx = perm_[j];
      pairs_a_[j] = {Compress(key, plan, idx), idx};
    }
    CountingPasses(n, plan.bits);
  }

  /// 16-bit-digit counting-sort passes over pairs_a_, ping-ponging between
  /// the buffers; writes the final order back into perm_.
  void CountingPasses(std::size_t n, int total_bits) {
    Pair* cur = pairs_a_.data();
    Pair* nxt = pairs_b_.data();
    for (int shift = 0; shift < total_bits; shift += 16) {
      const int digit_bits = std::min(16, total_bits - shift);
      const std::size_t buckets = std::size_t{1} << digit_bits;
      const std::uint64_t digit_mask = buckets - 1;
      count_.assign(buckets + 1, 0);
      for (std::size_t j = 0; j < n; ++j)
        ++count_[((cur[j].key >> shift) & digit_mask) + 1];
      for (std::size_t b = 1; b <= buckets; ++b) count_[b] += count_[b - 1];
      for (std::size_t j = 0; j < n; ++j)
        nxt[count_[(cur[j].key >> shift) & digit_mask]++] = cur[j];
      std::swap(cur, nxt);
    }
    for (std::size_t j = 0; j < n; ++j) perm_[j] = cur[j].idx;
  }

  std::vector<std::uint32_t> perm_;
  std::vector<Pair> pairs_a_;
  std::vector<Pair> pairs_b_;
  std::vector<std::uint32_t> count_;
  std::vector<BitRun> runs_;
  std::vector<ComponentPlan> plans_;
};

}  // namespace mcloud
