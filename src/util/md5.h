// MD5 message digest (RFC 1321), implemented from scratch.
//
// The examined service identifies every chunk and file by its MD5 hash
// (§2.1): the metadata server's deduplication index is keyed by file MD5, and
// chunk requests carry per-chunk MD5s. MD5 is used here for fidelity to the
// paper's system, not for security.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mcloud {

/// A 128-bit MD5 digest.
struct Md5Digest {
  std::array<std::uint8_t, 16> bytes{};

  [[nodiscard]] std::string ToHex() const;
  /// The low 64 bits, convenient as a hash-map key.
  [[nodiscard]] std::uint64_t Low64() const;

  friend bool operator==(const Md5Digest&, const Md5Digest&) = default;
};

/// Incremental MD5 hasher.
class Md5 {
 public:
  Md5();

  /// Feed more message bytes.
  void Update(std::span<const std::uint8_t> data);
  void Update(std::string_view data);

  /// Finalize and return the digest. The hasher must not be reused after
  /// Finalize() without Reset().
  [[nodiscard]] Md5Digest Finalize();

  void Reset();

  /// One-shot convenience.
  [[nodiscard]] static Md5Digest Hash(std::string_view data);
  [[nodiscard]] static Md5Digest Hash(std::span<const std::uint8_t> data);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_{};
  std::uint64_t bit_count_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  bool finalized_ = false;
};

}  // namespace mcloud

template <>
struct std::hash<mcloud::Md5Digest> {
  std::size_t operator()(const mcloud::Md5Digest& d) const noexcept {
    return static_cast<std::size_t>(d.Low64());
  }
};
