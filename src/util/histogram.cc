#include "util/histogram.h"

#include <algorithm>

namespace mcloud {

std::vector<double> Histogram::Smoothed(std::size_t radius) const {
  std::vector<double> out(counts_.size(), 0.0);
  const auto n = static_cast<std::ptrdiff_t>(counts_.size());
  const auto r = static_cast<std::ptrdiff_t>(radius);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double sum = 0;
    std::ptrdiff_t cnt = 0;
    for (std::ptrdiff_t j = std::max<std::ptrdiff_t>(0, i - r);
         j <= std::min(n - 1, i + r); ++j) {
      sum += static_cast<double>(counts_[static_cast<std::size_t>(j)]);
      ++cnt;
    }
    out[static_cast<std::size_t>(i)] = sum / static_cast<double>(cnt);
  }
  return out;
}

double Histogram::ValueAtQuantile(double q) const {
  MCLOUD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (c == 0) continue;
    if (cum + c >= target) {
      // q == 0 lands here with target == 0: return the left edge of the
      // first non-empty bin. Otherwise interpolate within the bin.
      const double within = c > 0 ? (target - cum) / c : 0.0;
      return BinLeft(i) + within * BinWidth();
    }
    cum += c;
  }
  // Rounding left target a hair past the accumulated mass: right edge of
  // the last non-empty bin.
  for (std::size_t i = counts_.size(); i-- > 0;) {
    if (counts_[i] > 0) return BinLeft(i) + BinWidth();
  }
  return hi_;
}

std::size_t Histogram::DeepestValley(std::size_t smooth_radius) const {
  const std::vector<double> s = Smoothed(smooth_radius);
  const std::size_t n = s.size();
  if (n < 3) return n;

  std::size_t best = n;
  double best_depth = 0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double left_peak =
        *std::max_element(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(i));
    const double right_peak =
        *std::max_element(s.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                          s.end());
    if (left_peak <= s[i] || right_peak <= s[i]) continue;
    // Depth of the valley relative to its lower shoulder.
    const double depth = std::min(left_peak, right_peak) - s[i];
    if (depth > best_depth) {
      best_depth = depth;
      best = i;
    }
  }
  return best;
}

}  // namespace mcloud
