// Summary statistics: running moments, percentiles, empirical CDF/CCDF.
//
// Every figure in the paper is a CDF, CCDF, histogram, or percentile series;
// these helpers are the shared vocabulary for all of bench/ and analysis/.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "util/error.h"

namespace mcloud {

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  [[nodiscard]] std::size_t Count() const { return n_; }
  [[nodiscard]] double Mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double Variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double StdDev() const;
  [[nodiscard]] double Min() const;
  [[nodiscard]] double Max() const;
  [[nodiscard]] double Sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Percentile of a sample using linear interpolation between order
/// statistics (type-7 quantile, matching numpy/Matlab defaults). `p` in
/// [0, 100]. Sorts a copy; use Percentiles() for many cut points.
[[nodiscard]] double Percentile(std::span<const double> xs, double p);

/// Percentiles of a sample for several cut points; sorts once.
[[nodiscard]] std::vector<double> Percentiles(std::span<const double> xs,
                                              std::span<const double> ps);

/// Empirical CDF over a sample: Evaluate(x) = fraction of samples <= x.
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  [[nodiscard]] std::size_t Count() const { return sorted_.size(); }
  [[nodiscard]] double Evaluate(double x) const;
  [[nodiscard]] double Ccdf(double x) const { return 1.0 - Evaluate(x); }
  /// Inverse CDF (quantile), q in [0, 1].
  [[nodiscard]] double Quantile(double q) const;
  [[nodiscard]] double Median() const { return Quantile(0.5); }
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

  /// Evaluate the CDF on a grid of points — the series plotted in a figure.
  [[nodiscard]] std::vector<double> OnGrid(std::span<const double> grid) const;

  /// Kolmogorov–Smirnov distance to a model CDF.
  template <typename ModelCdf>
  [[nodiscard]] double KsDistance(ModelCdf&& model) const {
    double d = 0;
    const auto n = static_cast<double>(sorted_.size());
    for (std::size_t i = 0; i < sorted_.size(); ++i) {
      const double m = model(sorted_[i]);
      const double lo = static_cast<double>(i) / n;
      const double hi = static_cast<double>(i + 1) / n;
      d = std::max({d, std::abs(m - lo), std::abs(m - hi)});
    }
    return d;
  }

 private:
  std::vector<double> sorted_;
};

/// Geometrically spaced grid [lo, hi] with `points` entries (for log-x CDFs).
[[nodiscard]] std::vector<double> LogGrid(double lo, double hi,
                                          std::size_t points);
/// Linearly spaced grid [lo, hi] with `points` entries.
[[nodiscard]] std::vector<double> LinGrid(double lo, double hi,
                                          std::size_t points);

}  // namespace mcloud
