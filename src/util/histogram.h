// Fixed-bin histograms (linear or logarithmic bin edges).
//
// Used for Fig 3 (log-scaled inter-operation time histogram), Fig 15 (sending
// window distribution) and for chi-square goodness-of-fit tests.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.h"

namespace mcloud {

/// Histogram over [lo, hi) with `bins` equal-width bins. Values outside the
/// range are counted in underflow/overflow and excluded from densities.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    MCLOUD_REQUIRE(hi > lo, "histogram range must be non-empty");
    MCLOUD_REQUIRE(bins > 0, "histogram needs at least one bin");
  }

  void Add(double x, std::uint64_t count = 1) {
    if (x < lo_) {
      underflow_ += count;
      return;
    }
    if (x >= hi_) {
      overflow_ += count;
      return;
    }
    const auto b = static_cast<std::size_t>((x - lo_) / BinWidth());
    counts_[b < counts_.size() ? b : counts_.size() - 1] += count;
    total_ += count;
  }

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double BinWidth() const {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] double BinLeft(std::size_t i) const {
    return lo_ + static_cast<double>(i) * BinWidth();
  }
  [[nodiscard]] double BinCenter(std::size_t i) const {
    return BinLeft(i) + 0.5 * BinWidth();
  }
  [[nodiscard]] std::uint64_t Count(std::size_t i) const {
    MCLOUD_REQUIRE(i < counts_.size(), "bin index out of range");
    return counts_[i];
  }
  [[nodiscard]] std::uint64_t TotalInRange() const { return total_; }
  [[nodiscard]] std::uint64_t Underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t Overflow() const { return overflow_; }

  /// Fraction of in-range mass in bin i.
  [[nodiscard]] double Fraction(std::size_t i) const {
    if (total_ == 0) return 0;
    return static_cast<double>(Count(i)) / static_cast<double>(total_);
  }
  /// Probability density estimate at bin i.
  [[nodiscard]] double Density(std::size_t i) const {
    return Fraction(i) / BinWidth();
  }

  /// Index of the deepest interior valley: the minimum-count bin that has a
  /// strictly larger smoothed count somewhere on both sides. Used to find the
  /// inter/intra-session boundary in the Fig 3 histogram. Returns bins() if
  /// the histogram is monotone (no interior valley).
  [[nodiscard]] std::size_t DeepestValley(std::size_t smooth_radius = 2) const;

  /// Value at quantile q ∈ [0, 1] of the *in-range* mass, with linear
  /// interpolation inside the containing bin (mass is treated as uniform
  /// within a bin, so the result is exact for piecewise-uniform data).
  /// Underflow/overflow are excluded, matching Fraction()/Density().
  /// Returns lo() on an empty histogram. This is the one quantile
  /// implementation shared by the Fig 3/15 reproductions and the live
  /// load-generator's latency histograms (p50/p90/p99/p999).
  [[nodiscard]] double ValueAtQuantile(double q) const;

 private:
  [[nodiscard]] std::vector<double> Smoothed(std::size_t radius) const;

  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace mcloud
