// Units and small strong-ish types used across the library.
//
// Times inside the simulator and the trace are kept in two forms:
//   * `UnixSeconds` — wall-clock timestamps of log records (integral seconds
//     since the epoch, matching the one-second resolution of the paper's HTTP
//     access logs, Table 1).
//   * `Seconds` — durations and simulated time, double precision, so that the
//     TCP simulator can express sub-millisecond events.
#pragma once

#include <cstdint>

namespace mcloud {

using Bytes = std::uint64_t;
using Seconds = double;          ///< duration / simulated time
using UnixSeconds = std::int64_t;///< wall-clock timestamp (1 s resolution)

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Fixed chunk size of the examined service (§2.1): 512 KB.
inline constexpr Bytes kChunkSize = 512 * kKiB;

inline constexpr Seconds kSecond = 1.0;
inline constexpr Seconds kMinute = 60.0;
inline constexpr Seconds kHour = 3600.0;
inline constexpr Seconds kDay = 24 * kHour;
inline constexpr Seconds kWeek = 7 * kDay;

inline constexpr double kMilli = 1e-3;

/// Convert a byte count to MB (decimal, as the paper reports file sizes).
[[nodiscard]] constexpr double ToMB(Bytes b) {
  return static_cast<double>(b) / 1e6;
}
/// Convert MB (decimal) to bytes, rounding down.
[[nodiscard]] constexpr Bytes FromMB(double mb) {
  return static_cast<Bytes>(mb * 1e6);
}

}  // namespace mcloud
