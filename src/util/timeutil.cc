#include "util/timeutil.h"

#include <array>
#include <cstdio>

namespace mcloud {

std::string DayLabel(int day_index) {
  static constexpr std::array<const char*, 7> kNames = {
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  const int d = ((day_index % 7) + 7) % 7;
  return kNames[static_cast<std::size_t>(d)];
}

std::string TimestampLabel(UnixSeconds ts, UnixSeconds start) {
  const auto rel = ts - start;
  const int day = static_cast<int>(rel / static_cast<UnixSeconds>(kDay));
  const auto within = rel % static_cast<UnixSeconds>(kDay);
  const int h = static_cast<int>(within / 3600);
  const int m = static_cast<int>((within % 3600) / 60);
  const int s = static_cast<int>(within % 60);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s %02d:%02d:%02d",
                DayLabel(day).c_str(), h, m, s);
  return buf;
}

}  // namespace mcloud
