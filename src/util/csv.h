// Minimal CSV tokenizer/formatter for the trace readers and bench output.
//
// The trace format is plain comma-separated values with no embedded commas in
// any field (device IDs and hex hashes only), so no quoting is implemented;
// Join() rejects fields that would need it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mcloud {

/// Split one CSV line into fields (views into `line`; no copies).
[[nodiscard]] std::vector<std::string_view> SplitCsvLine(
    std::string_view line);

/// Join fields into one CSV line. Throws ParseError if a field contains a
/// comma or newline.
[[nodiscard]] std::string JoinCsvLine(
    const std::vector<std::string_view>& fields);

/// Parse helpers that throw ParseError with context on malformed input.
[[nodiscard]] std::int64_t ParseInt64(std::string_view field,
                                      std::string_view what);
[[nodiscard]] std::uint64_t ParseUint64(std::string_view field,
                                        std::string_view what);
[[nodiscard]] double ParseDouble(std::string_view field,
                                 std::string_view what);

}  // namespace mcloud
