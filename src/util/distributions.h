// Parametric distributions used by the paper's models.
//
// Three families carry the paper's behavioural models:
//   * GaussianMixture — §3.1.1 fits a two-component Gaussian mixture to the
//     log10 inter-file-operation time (intra-session ≈10 s, inter-session
//     ≈1 day).
//   * MixtureExponential — §3.1.4 / Table 2 fits three-component mixtures of
//     exponentials to per-session average file size.
//   * StretchedExponential — §3.2.3 / Fig 10 models per-user activity ranks.
// Each class exposes Pdf / Cdf / Ccdf / Sample / Mean so the same object can
// drive both generation (workload) and evaluation (goodness-of-fit).
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace mcloud {

/// One-dimensional Gaussian mixture.
class GaussianMixture {
 public:
  struct Component {
    double weight = 0;  ///< mixing proportion, weights sum to 1
    double mean = 0;
    double stddev = 1;
  };

  GaussianMixture() = default;
  explicit GaussianMixture(std::vector<Component> components)
      : components_(std::move(components)) {
    Validate();
  }

  [[nodiscard]] const std::vector<Component>& components() const {
    return components_;
  }
  [[nodiscard]] std::size_t size() const { return components_.size(); }

  [[nodiscard]] double Pdf(double x) const {
    double p = 0;
    for (const auto& c : components_) p += c.weight * NormalPdf(x, c);
    return p;
  }

  [[nodiscard]] double Cdf(double x) const {
    double p = 0;
    for (const auto& c : components_) {
      p += c.weight * 0.5 *
           std::erfc(-(x - c.mean) / (c.stddev * std::numbers::sqrt2));
    }
    return p;
  }

  /// Posterior responsibility of component k for observation x.
  [[nodiscard]] double Responsibility(std::size_t k, double x) const {
    MCLOUD_REQUIRE(k < components_.size(), "component index out of range");
    const double denom = Pdf(x);
    if (denom <= 0) return 1.0 / static_cast<double>(components_.size());
    return components_[k].weight * NormalPdf(x, components_[k]) / denom;
  }

  [[nodiscard]] double Mean() const {
    double m = 0;
    for (const auto& c : components_) m += c.weight * c.mean;
    return m;
  }

  [[nodiscard]] double Sample(Rng& rng) const {
    const std::size_t k = PickComponent(rng);
    const auto& c = components_[k];
    return rng.Normal(c.mean, c.stddev);
  }

  /// Sample and also report which component generated the value.
  [[nodiscard]] std::pair<double, std::size_t> SampleWithComponent(
      Rng& rng) const {
    const std::size_t k = PickComponent(rng);
    const auto& c = components_[k];
    return {rng.Normal(c.mean, c.stddev), k};
  }

 private:
  static double NormalPdf(double x, const Component& c) {
    const double z = (x - c.mean) / c.stddev;
    return std::exp(-0.5 * z * z) /
           (c.stddev * std::sqrt(2.0 * std::numbers::pi));
  }
  std::size_t PickComponent(Rng& rng) const {
    std::vector<double> w;
    w.reserve(components_.size());
    for (const auto& c : components_) w.push_back(c.weight);
    return rng.PickWeighted(w);
  }
  void Validate() const {
    MCLOUD_REQUIRE(!components_.empty(), "mixture needs >= 1 component");
    double total = 0;
    for (const auto& c : components_) {
      MCLOUD_REQUIRE(c.stddev > 0, "stddev must be positive");
      MCLOUD_REQUIRE(c.weight >= 0, "weights must be non-negative");
      total += c.weight;
    }
    MCLOUD_REQUIRE(std::abs(total - 1.0) < 1e-6, "weights must sum to 1");
  }

  std::vector<Component> components_;
};

/// Mixture of exponentials, parameterised by component means (µ_i, the
/// paper's notation) and weights (α_i). Pdf: f(x) = Σ α_i (1/µ_i) e^{-x/µ_i}.
class MixtureExponential {
 public:
  struct Component {
    double weight = 0;  ///< α_i
    double mean = 1;    ///< µ_i
  };

  MixtureExponential() = default;
  explicit MixtureExponential(std::vector<Component> components)
      : components_(std::move(components)) {
    Validate();
  }

  [[nodiscard]] const std::vector<Component>& components() const {
    return components_;
  }
  [[nodiscard]] std::size_t size() const { return components_.size(); }

  [[nodiscard]] double Pdf(double x) const {
    if (x < 0) return 0;
    double p = 0;
    for (const auto& c : components_)
      p += c.weight / c.mean * std::exp(-x / c.mean);
    return p;
  }

  [[nodiscard]] double Cdf(double x) const {
    if (x < 0) return 0;
    double p = 0;
    for (const auto& c : components_)
      p += c.weight * (1.0 - std::exp(-x / c.mean));
    return p;
  }

  [[nodiscard]] double Ccdf(double x) const { return 1.0 - Cdf(x); }

  [[nodiscard]] double Mean() const {
    double m = 0;
    for (const auto& c : components_) m += c.weight * c.mean;
    return m;
  }

  /// Posterior responsibility of component k for observation x.
  [[nodiscard]] double Responsibility(std::size_t k, double x) const {
    MCLOUD_REQUIRE(k < components_.size(), "component index out of range");
    const double denom = Pdf(x);
    if (denom <= 0) return 1.0 / static_cast<double>(components_.size());
    const auto& c = components_[k];
    return (c.weight / c.mean * std::exp(-x / c.mean)) / denom;
  }

  [[nodiscard]] double Sample(Rng& rng) const {
    std::vector<double> w;
    w.reserve(components_.size());
    for (const auto& c : components_) w.push_back(c.weight);
    const auto& c = components_[rng.PickWeighted(w)];
    return rng.ExponentialMean(c.mean);
  }

 private:
  void Validate() const {
    MCLOUD_REQUIRE(!components_.empty(), "mixture needs >= 1 component");
    double total = 0;
    for (const auto& c : components_) {
      MCLOUD_REQUIRE(c.mean > 0, "exponential mean must be positive");
      MCLOUD_REQUIRE(c.weight >= 0, "weights must be non-negative");
      total += c.weight;
    }
    MCLOUD_REQUIRE(std::abs(total - 1.0) < 1e-6, "weights must sum to 1");
  }

  std::vector<Component> components_;
};

/// Stretched-exponential (Weibull-tailed) distribution with
/// CCDF P(X >= x) = exp(-(x/x0)^c), x >= 0. The paper uses it (§3.2.3) for
/// per-user activity: smaller stretch factor c ⇒ more skewed activity.
class StretchedExponential {
 public:
  StretchedExponential(double x0, double c) : x0_(x0), c_(c) {
    MCLOUD_REQUIRE(x0 > 0, "x0 must be positive");
    MCLOUD_REQUIRE(c > 0, "stretch factor must be positive");
  }

  [[nodiscard]] double x0() const { return x0_; }
  [[nodiscard]] double stretch() const { return c_; }

  [[nodiscard]] double Ccdf(double x) const {
    if (x <= 0) return 1.0;
    return std::exp(-std::pow(x / x0_, c_));
  }
  [[nodiscard]] double Cdf(double x) const { return 1.0 - Ccdf(x); }

  [[nodiscard]] double Pdf(double x) const {
    if (x <= 0) return 0;
    const double r = std::pow(x / x0_, c_);
    return c_ / x0_ * std::pow(x / x0_, c_ - 1.0) * std::exp(-r);
  }

  /// Inverse CCDF; u in (0, 1].
  [[nodiscard]] double Quantile(double u) const {
    MCLOUD_REQUIRE(u > 0 && u <= 1, "quantile arg must be in (0,1]");
    return x0_ * std::pow(-std::log(u), 1.0 / c_);
  }

  [[nodiscard]] double Sample(Rng& rng) const {
    double u = rng.Uniform();
    while (u <= 0.0) u = rng.Uniform();
    return Quantile(u);
  }

  /// Expected value of the rank-i statistic among n samples, following the
  /// paper's rank analysis: P(X >= x_i) = i/n  ⇒  x_i = x0 (ln(n/i))^{1/c}.
  [[nodiscard]] double RankValue(std::size_t rank, std::size_t n) const {
    MCLOUD_REQUIRE(rank >= 1 && rank <= n, "rank out of range");
    if (rank == n) return 0;
    return x0_ * std::pow(std::log(static_cast<double>(n) /
                                   static_cast<double>(rank)),
                          1.0 / c_);
  }

 private:
  double x0_;
  double c_;
};

/// Bounded Zipf distribution over ranks {1..n} with exponent s, used as the
/// power-law comparison model that the paper *rejects* for user activity.
class Zipf {
 public:
  Zipf(std::size_t n, double s) : n_(n), s_(s) {
    MCLOUD_REQUIRE(n >= 1, "Zipf needs n >= 1");
    MCLOUD_REQUIRE(s > 0, "Zipf exponent must be positive");
    cdf_.reserve(n);
    double total = 0;
    for (std::size_t k = 1; k <= n; ++k) {
      total += std::pow(static_cast<double>(k), -s);
      cdf_.push_back(total);
    }
    for (auto& v : cdf_) v /= total;
  }

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] double exponent() const { return s_; }

  /// Probability mass of rank k (1-based).
  [[nodiscard]] double Pmf(std::size_t k) const {
    MCLOUD_REQUIRE(k >= 1 && k <= n_, "rank out of range");
    const double prev = (k == 1) ? 0.0 : cdf_[k - 2];
    return cdf_[k - 1] - prev;
  }

  /// Sample a rank in [1, n].
  [[nodiscard]] std::size_t Sample(Rng& rng) const {
    const double u = rng.Uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin()) + 1;
  }

 private:
  std::size_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace mcloud
