// Stable k-way merge of sorted runs.
//
// The parallel workload generator sorts each shard's output locally and
// merges the shard runs into the final trace. The merge is *stable across
// runs*: when two elements compare equal, the one from the lower-indexed run
// wins, and elements within one run keep their order. Merging contiguous,
// stably-sorted partitions of a sequence therefore yields exactly
// std::stable_sort of the whole sequence — which is how `threads = N`
// reproduces the `threads = 1` output byte for byte.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace mcloud {

/// Merge `runs` (each sorted by `less`, ties in original order) into a sink:
/// `sink(T&&)` receives the merged elements in order. Consumes the runs;
/// each run's storage is released as soon as it is exhausted. This is the
/// core the vector-producing overload wraps — use it directly to merge into
/// a columnar builder without materializing the merged AoS vector.
template <typename T, typename Less, typename Sink>
void MergeSortedRunsInto(std::vector<std::vector<T>>&& runs, Less less,
                         Sink&& sink) {
  // Heap entry: (run index, position). Ordering: smaller element first;
  // equal elements -> lower run index first (stability across runs).
  struct Head {
    std::size_t run;
    std::size_t pos;
  };
  std::vector<Head> heap;
  heap.reserve(runs.size());
  const auto head_after = [&](const Head& a, const Head& b) {
    const T& x = runs[a.run][a.pos];
    const T& y = runs[b.run][b.pos];
    if (less(x, y)) return false;
    if (less(y, x)) return true;
    return a.run > b.run;
  };
  const auto sift_down = [&](std::size_t i) {
    for (;;) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t best = i;
      if (l < heap.size() && head_after(heap[best], heap[l])) best = l;
      if (r < heap.size() && head_after(heap[best], heap[r])) best = r;
      if (best == i) return;
      std::swap(heap[i], heap[best]);
      i = best;
    }
  };

  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push_back({r, 0});
  }
  for (std::size_t i = heap.size(); i-- > 0;) sift_down(i);

  while (!heap.empty()) {
    Head& top = heap.front();
    sink(std::move(runs[top.run][top.pos]));
    if (++top.pos == runs[top.run].size()) {
      // Run exhausted: free its storage and shrink the heap.
      runs[top.run] = std::vector<T>();
      heap.front() = heap.back();
      heap.pop_back();
    }
    if (!heap.empty()) sift_down(0);
  }
  runs.clear();
}

/// Generalization of MergeSortedRunsInto to *streaming* sources: merge k
/// sorted cursors whose backing data need not be resident (the out-of-core
/// partition reader refills each cursor from disk blockwise). A Cursor must
/// provide `bool empty() const` and `void pop()`; `less(a, b)` orders two
/// non-empty cursors by their current heads. Each step calls
/// `sink(cursors[i])` for the cursor holding the smallest head, then pops
/// it. Ties across cursors go to the lower index and elements within one
/// cursor keep their order — the same stability contract as
/// MergeSortedRunsInto, so merging stably-sorted contiguous partitions
/// reproduces std::stable_sort of their concatenation.
template <typename Cursor, typename Less, typename Sink>
void MergeSortedCursorsInto(std::vector<Cursor>& cursors, Less less,
                            Sink&& sink) {
  std::vector<std::size_t> heap;
  heap.reserve(cursors.size());
  const auto head_after = [&](std::size_t a, std::size_t b) {
    if (less(cursors[a], cursors[b])) return false;
    if (less(cursors[b], cursors[a])) return true;
    return a > b;
  };
  const auto sift_down = [&](std::size_t i) {
    for (;;) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t best = i;
      if (l < heap.size() && head_after(heap[best], heap[l])) best = l;
      if (r < heap.size() && head_after(heap[best], heap[r])) best = r;
      if (best == i) return;
      std::swap(heap[i], heap[best]);
      i = best;
    }
  };

  for (std::size_t c = 0; c < cursors.size(); ++c) {
    if (!cursors[c].empty()) heap.push_back(c);
  }
  for (std::size_t i = heap.size(); i-- > 0;) sift_down(i);

  while (!heap.empty()) {
    Cursor& top = cursors[heap.front()];
    sink(top);
    top.pop();
    if (top.empty()) {
      heap.front() = heap.back();
      heap.pop_back();
    }
    if (!heap.empty()) sift_down(0);
  }
}

/// Merge `runs` (each sorted by `less`, ties in original order) into one
/// sorted vector. Consumes the runs; peak memory is output + the
/// unexhausted tails.
template <typename T, typename Less>
[[nodiscard]] std::vector<T> MergeSortedRuns(std::vector<std::vector<T>>&& runs,
                                             Less less) {
  if (runs.size() == 1) {
    std::vector<T> out = std::move(runs.front());
    runs.clear();
    return out;
  }
  std::size_t total = 0;
  for (const auto& run : runs) total += run.size();
  std::vector<T> out;
  out.reserve(total);
  MergeSortedRunsInto(std::move(runs), less,
                      [&out](T&& v) { out.push_back(std::move(v)); });
  return out;
}

}  // namespace mcloud
