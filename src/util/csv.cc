#include "util/csv.h"

#include <charconv>
#include <cstdint>

#include "util/error.h"

namespace mcloud {

std::vector<std::string_view> SplitCsvLine(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

std::string JoinCsvLine(const std::vector<std::string_view>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].find_first_of(",\n\r") != std::string_view::npos) {
      throw ParseError("CSV field contains separator: '" +
                       std::string(fields[i]) + "'");
    }
    if (i > 0) out.push_back(',');
    out.append(fields[i]);
  }
  return out;
}

namespace {
[[noreturn]] void ThrowBadField(std::string_view field,
                                std::string_view what) {
  throw ParseError("cannot parse " + std::string(what) + " from '" +
                   std::string(field) + "'");
}
}  // namespace

std::int64_t ParseInt64(std::string_view field, std::string_view what) {
  std::int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), v);
  if (ec != std::errc() || ptr != field.data() + field.size())
    ThrowBadField(field, what);
  return v;
}

std::uint64_t ParseUint64(std::string_view field, std::string_view what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), v);
  if (ec != std::errc() || ptr != field.data() + field.size())
    ThrowBadField(field, what);
  return v;
}

double ParseDouble(std::string_view field, std::string_view what) {
  double v = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), v);
  if (ec != std::errc() || ptr != field.data() + field.size())
    ThrowBadField(field, what);
  return v;
}

}  // namespace mcloud
