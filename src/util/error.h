// Error handling primitives for the mcloud library.
//
// Library code reports failures by throwing mcloud::Error (or a subclass).
// The MCLOUD_CHECK / MCLOUD_REQUIRE macros express preconditions and internal
// invariants; both throw rather than abort so that callers (examples, benches,
// long-running analyses) can recover or report cleanly.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace mcloud {

/// Base exception for all mcloud failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file / record cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a numeric fit fails to converge or is given degenerate data.
class FitError : public Error {
 public:
  explicit FitError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void ThrowCheckFailure(std::string_view kind,
                                           std::string_view expr,
                                           std::string_view file, int line,
                                           std::string_view msg) {
  std::string out;
  out.reserve(128);
  out.append(kind).append(" failed: ").append(expr);
  out.append(" at ").append(file).append(":").append(std::to_string(line));
  if (!msg.empty()) out.append(" — ").append(msg);
  throw Error(out);
}
}  // namespace detail

/// Precondition check on caller-supplied arguments.
#define MCLOUD_REQUIRE(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::mcloud::detail::ThrowCheckFailure("precondition", #cond,          \
                                          __FILE__, __LINE__, (msg));     \
    }                                                                     \
  } while (false)

/// Internal invariant check; indicates a bug in mcloud itself if it fires.
#define MCLOUD_CHECK(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::mcloud::detail::ThrowCheckFailure("invariant", #cond,             \
                                          __FILE__, __LINE__, (msg));     \
    }                                                                     \
  } while (false)

}  // namespace mcloud
