// Calendar helpers over UnixSeconds timestamps.
//
// The trace spans one week starting on a Monday 00:00 (matching the paper's
// M–Su x-axis in Fig 1); these helpers convert timestamps to day/hour bins.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.h"

namespace mcloud {

/// Trace epoch: Monday 2015-08-03 00:00:00 UTC — the August 2015 collection
/// week implied by the log example in Table 1 ("19:10:01 Aug. 4 2015").
inline constexpr UnixSeconds kTraceStart = 1438560000;

/// Day index (0-based) since `start`.
[[nodiscard]] constexpr int DayIndex(UnixSeconds ts,
                                     UnixSeconds start = kTraceStart) {
  return static_cast<int>((ts - start) / static_cast<UnixSeconds>(kDay));
}

/// Hour-of-trace index (0-based one-hour bins) since `start`.
[[nodiscard]] constexpr int HourIndex(UnixSeconds ts,
                                      UnixSeconds start = kTraceStart) {
  return static_cast<int>((ts - start) / static_cast<UnixSeconds>(kHour));
}

/// Hour of day (0..23) relative to `start` being midnight.
[[nodiscard]] constexpr int HourOfDay(UnixSeconds ts,
                                      UnixSeconds start = kTraceStart) {
  return HourIndex(ts, start) % 24;
}

/// Floor division of a signed second offset into calendar days: negative
/// offsets round toward -inf, so a record just before the day base lands in
/// day -1, not day 0. This is the day key of TraceStore's partitions and of
/// the partitioned on-disk trace layout — the two must always agree.
[[nodiscard]] constexpr std::int64_t FloorDayIndex(std::int64_t offset) {
  const auto day = static_cast<std::int64_t>(kDay);
  std::int64_t q = offset / day;
  if (offset % day != 0 && offset < 0) --q;
  return q;
}

/// "Mon".."Sun" label for a day index (day 0 = Monday).
[[nodiscard]] std::string DayLabel(int day_index);

/// "Tue 19:10:01"-style label for a timestamp.
[[nodiscard]] std::string TimestampLabel(UnixSeconds ts,
                                         UnixSeconds start = kTraceStart);

}  // namespace mcloud
