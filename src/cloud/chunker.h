// File chunking and content identity (§2.1).
//
// The service splits files into fixed 512 KB chunks; every chunk and file is
// identified by an MD5 hash of its content. The trace carries no real bytes,
// so content identity is synthesized: a file is (content_seed, size), and
// its chunk hashes are MD5 over (content_seed, chunk_index, chunk_size).
// Files sharing a content_seed — popular videos shared by URL — hash
// identically everywhere, which is exactly what the metadata server's
// deduplication needs to work against.
#pragma once

#include <cstdint>
#include <vector>

#include "util/md5.h"
#include "util/units.h"

namespace mcloud::cloud {

struct ChunkInfo {
  std::uint32_t index = 0;
  Bytes size = 0;
  Md5Digest md5;
};

struct FileManifest {
  Md5Digest file_md5;
  Bytes size = 0;
  std::vector<ChunkInfo> chunks;
};

class Chunker {
 public:
  explicit Chunker(Bytes chunk_size = kChunkSize);

  [[nodiscard]] Bytes chunk_size() const { return chunk_size_; }

  /// Build the manifest the client sends in its file storage operation
  /// request: file MD5, chunk count, and per-chunk MD5s.
  [[nodiscard]] FileManifest Manifest(std::uint64_t content_seed,
                                      Bytes file_size) const;

  [[nodiscard]] std::size_t ChunkCount(Bytes file_size) const;

 private:
  Bytes chunk_size_;
};

}  // namespace mcloud::cloud
