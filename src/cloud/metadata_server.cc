#include "cloud/metadata_server.h"

#include "util/error.h"

namespace mcloud::cloud {

MetadataServer::MetadataServer(FrontEndId front_ends)
    : front_ends_(front_ends) {
  MCLOUD_REQUIRE(front_ends > 0, "need at least one front-end");
}

StoreDecision MetadataServer::QueryStore(std::uint64_t user_id,
                                         const FileManifest& manifest) {
  ++stats_.store_queries;
  spaces_[user_id].insert(manifest.file_md5);

  if (const auto it = location_.find(manifest.file_md5);
      it != location_.end()) {
    ++stats_.dedup_hits;
    return StoreDecision{true, it->second};
  }
  // New content: round-robin placement across front-ends stands in for the
  // "closest front-end" selection of the real service.
  const FrontEndId fe = next_assignment_;
  next_assignment_ = (next_assignment_ + 1) % front_ends_;
  location_.emplace(manifest.file_md5, fe);
  return StoreDecision{false, fe};
}

std::optional<FrontEndId> MetadataServer::QueryRetrieve(
    std::uint64_t user_id, const Md5Digest& file_md5) {
  ++stats_.retrieve_queries;
  (void)user_id;  // retrieval by URL works even outside the user's space
  if (const auto it = location_.find(file_md5); it != location_.end())
    return it->second;
  ++stats_.retrieve_misses;
  return std::nullopt;
}

void MetadataServer::Relocate(const Md5Digest& file_md5, FrontEndId front_end) {
  MCLOUD_REQUIRE(front_end < front_ends_, "relocation target out of range");
  if (const auto it = location_.find(file_md5); it != location_.end())
    it->second = front_end;
}

std::size_t MetadataServer::UserFileCount(std::uint64_t user_id) const {
  const auto it = spaces_.find(user_id);
  return it == spaces_.end() ? 0 : it->second.size();
}

}  // namespace mcloud::cloud
