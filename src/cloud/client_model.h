// Device-type client behaviour models (§4).
//
// The paper's active measurements (Samsung Pad vs iPad Air2) localize the
// Android/iOS performance gap at the client: Android spends far longer
// preparing chunks (T_clt) and pauses mid-transfer (the collapsing in-flight
// sizes of Fig 13b), so its inter-chunk idles exceed the RTO for ~60% of
// gaps and slow-start restarts throttle every following chunk. These models
// parameterize exactly that: per-direction T_clt distributions, intra-chunk
// stall behaviour, receive windows, and access-link rates.
//
// Servers do NOT distinguish device types (§4.1): T_srv and the server's
// 64 KB receive window are device-independent, and live here only because
// the client model is the convenient bundle the simulator consumes.
#pragma once

#include "tcp/flow.h"
#include "trace/log_record.h"
#include "util/rng.h"
#include "util/units.h"

namespace mcloud::cloud {

/// Lognormal described by its median and sigma (of the underlying normal).
struct LogNormalSpec {
  double median = 0.1;
  double sigma = 0.5;

  [[nodiscard]] double Sample(Rng& rng) const;
  [[nodiscard]] double Mean() const;
};

struct ClientBehavior {
  /// T_clt before the next upload chunk (prepare + re-read + app overhead).
  LogNormalSpec store_tclt;
  /// T_clt after a downloaded chunk (decode/write before requesting more).
  LogNormalSpec retrieve_tclt;
  /// Intra-chunk upload stalls: the sending app pauses roughly every
  /// `stall_block` bytes for a sampled duration (0 block = no stalls).
  Bytes stall_block = 0;
  LogNormalSpec stall_duration;
  /// Receive-side stalls while downloading (slow readers close the window,
  /// which pauses the sending server — modeled as sender stalls).
  Bytes retrieve_stall_block = 0;
  LogNormalSpec retrieve_stall_duration;
  /// Receive window the *client* advertises when downloading (window
  /// scaling is enabled on mobile clients; §4.1).
  Bytes receive_window = 2 * kMiB;
  /// Access link rates (bits/s) — medians; per-flow draws jitter around
  /// them.
  LogNormalSpec uplink_bps;
  LogNormalSpec downlink_bps;
};

/// Server-side constants shared by every flow.
struct ServerBehavior {
  /// Receive window advertised by the storage front-ends — 64 KB, because
  /// window scaling is disabled server-side (§4.1, Fig 15).
  Bytes receive_window = 64 * kKiB;
  /// Upstream storage-server processing per chunk (T_srv).
  LogNormalSpec tsrv{0.100, 0.45};
};

/// Calibrated behaviour for one device type.
[[nodiscard]] ClientBehavior BehaviorFor(DeviceType device);

/// Base path RTT distribution of mobile flows (median 100 ms, Fig 14).
[[nodiscard]] LogNormalSpec MobileRttSpec();

}  // namespace mcloud::cloud
