#include "cloud/fleet.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <numeric>
#include <utility>

#include "util/error.h"
#include "util/merge.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace mcloud::cloud {

namespace {

// Shard seed derivation salts. Mixed into the base seeds only when
// shards > 1, so the single-shard passthrough reproduces a plain
// StorageService::Execute bit for bit. Changing either constant changes
// every sharded sample (it is a reseed, not a semantic change).
constexpr std::uint64_t kShardSeedSalt = 0x5EED5A17C0DE0001ULL;
constexpr std::uint64_t kShardFaultSalt = 0xFA017A17C0DE0002ULL;

double WallSeconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

class Fnv {
 public:
  void MixU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 1099511628211ULL;
    }
  }
  void MixDouble(double v) { MixU64(std::bit_cast<std::uint64_t>(v)); }
  void MixBytes(const std::uint8_t* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
  }
  [[nodiscard]] std::uint64_t Value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

struct ShardRun {
  ServiceResult result;
  /// Canonical global ranks of this shard's sessions, ascending — index l
  /// holds the rank of the shard's l-th executed session.
  std::vector<std::uint32_t> ranks;
  double wall_s = 0;
};

void SumFaultStats(FaultStats& into, const FaultStats& from) {
  into.sessions += from.sessions;
  into.failed_sessions += from.failed_sessions;
  into.ops += from.ops;
  into.failed_ops += from.failed_ops;
  into.chunk_attempts += from.chunk_attempts;
  into.chunk_timeouts += from.chunk_timeouts;
  into.chunk_server_failures += from.chunk_server_failures;
  into.chunk_disconnects += from.chunk_disconnects;
  into.retries += from.retries;
  into.failovers += from.failovers;
  into.relocations += from.relocations;
  into.hedges_issued += from.hedges_issued;
  into.hedge_wins += from.hedge_wins;
  into.resume_skipped_chunks += from.resume_skipped_chunks;
  into.goodput_bytes += from.goodput_bytes;
  into.wasted_bytes += from.wasted_bytes;
}

ShardTelemetry TelemetryFor(std::uint32_t shard, const ServiceResult& r,
                            double wall_s) {
  ShardTelemetry t;
  t.shard = shard;
  t.sessions = r.session_outcomes.size();
  t.queue = r.queue;
  t.wall_s = wall_s;
  return t;
}

}  // namespace

std::uint32_t ShardOf(std::uint64_t user_id, std::uint32_t shards) {
  return static_cast<std::uint32_t>(SplitMix64(user_id) % shards);
}

FleetResult ExecuteFleet(
    const FleetConfig& config,
    std::span<const workload::SessionPlan> sessions) {
  MCLOUD_REQUIRE(config.shards >= 1, "need at least one shard");

  if (config.shards == 1) {
    // Serial passthrough: same seeds, same single event queue, same output
    // as the pre-sharding code path (pinned by the zero-fault goldens).
    const auto t0 = std::chrono::steady_clock::now();
    StorageService service(config.service);
    FleetResult out;
    out.result = service.Execute(sessions);
    out.shards.push_back(TelemetryFor(0, out.result, WallSeconds(t0)));
    return out;
  }

  const std::uint32_t k = config.shards;

  // Canonical execution order of the whole fleet: the order a single event
  // queue would run these sessions — stable sort by start time (the queue
  // breaks time ties by insertion order). rank[i] is session i's position
  // in that order.
  std::vector<std::uint32_t> order(sessions.size());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return sessions[a].start < sessions[b].start;
                   });
  std::vector<std::uint32_t> rank(sessions.size());
  for (std::uint32_t r = 0; r < order.size(); ++r) rank[order[r]] = r;

  // Partition by user hash, preserving input order within each shard (so a
  // shard's event queue sees the same insertion-order tie-breaks it would
  // in the serial run).
  std::vector<std::vector<workload::SessionPlan>> shard_plans(k);
  std::vector<std::vector<std::uint32_t>> shard_ranks(k);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const std::uint32_t s = ShardOf(sessions[i].user_id, k);
    shard_plans[s].push_back(sessions[i]);
    shard_ranks[s].push_back(rank[i]);
  }
  // A shard executes its sessions in (start, insertion) order, which is
  // exactly ascending canonical rank — rank is itself ordered by (start,
  // input index). Sorting the rank list therefore yields "rank of the
  // shard's l-th executed session" without re-deriving the sort.
  for (auto& ranks : shard_ranks) std::sort(ranks.begin(), ranks.end());

  // Run every shard on its own service instance. Seeds (and the fault
  // schedule's seed) are shard-derived via ForStream-style stateless
  // hashing, so shard streams are disjoint and independent of scheduling.
  std::vector<ShardRun> runs(k);
  ThreadPool pool(config.threads);
  ParallelFor(pool, k, [&](std::size_t s) {
    ServiceConfig cfg = config.service;
    cfg.seed = SplitMix64(SplitMix64(config.service.seed) ^
                          (kShardSeedSalt + SplitMix64(s + 1)));
    cfg.faults.seed = SplitMix64(SplitMix64(config.service.faults.seed) ^
                                 (kShardFaultSalt + SplitMix64(s + 1)));
    const auto t0 = std::chrono::steady_clock::now();
    StorageService service(cfg);
    runs[s].result = service.Execute(shard_plans[s]);
    runs[s].wall_s = WallSeconds(t0);
    runs[s].ranks = std::move(shard_ranks[s]);
  });

  FleetResult out;
  ServiceResult& m = out.result;
  out.shards.reserve(k);

  // --- Order-insensitive aggregates: elementwise sums (peak pending is a
  // max — it answers "how big must one shard's slot pool be").
  m.front_ends.resize(config.service.front_ends);
  std::size_t total_logs = 0;
  std::size_t total_retrievals = 0;
  std::size_t total_chunks = 0;
  std::size_t total_sessions = 0;
  for (std::uint32_t s = 0; s < k; ++s) {
    const ServiceResult& r = runs[s].result;
    out.shards.push_back(TelemetryFor(s, r, runs[s].wall_s));
    total_logs += r.logs.size();
    total_retrievals += r.retrievals.size();
    total_chunks += r.chunk_perf.size();
    total_sessions += r.session_outcomes.size();
    m.flows += r.flows;
    m.slow_start_restarts += r.slow_start_restarts;
    m.skipped_uploads += r.skipped_uploads;
    m.missing_chunk_serves += r.missing_chunk_serves;
    m.metadata.store_queries += r.metadata.store_queries;
    m.metadata.dedup_hits += r.metadata.dedup_hits;
    m.metadata.retrieve_queries += r.metadata.retrieve_queries;
    m.metadata.retrieve_misses += r.metadata.retrieve_misses;
    SumFaultStats(m.faults, r.faults);
    MCLOUD_REQUIRE(r.front_ends.size() == m.front_ends.size(),
                   "shard front-end fleet size mismatch");
    for (std::size_t f = 0; f < r.front_ends.size(); ++f) {
      FrontEndStats& into = m.front_ends[f];
      const FrontEndStats& from = r.front_ends[f];
      into.file_operations += from.file_operations;
      into.chunk_stores += from.chunk_stores;
      into.chunk_retrievals += from.chunk_retrievals;
      into.bytes_stored += from.bytes_stored;
      into.bytes_served += from.bytes_served;
      into.chunk_dedup_hits += from.chunk_dedup_hits;
      into.missing_chunks += from.missing_chunks;
    }
    m.queue.scheduled += r.queue.scheduled;
    m.queue.executed += r.queue.executed;
    m.queue.cancelled += r.queue.cancelled;
    m.queue.peak_pending = std::max(m.queue.peak_pending,
                                    r.queue.peak_pending);
  }
  MCLOUD_REQUIRE(total_sessions == sessions.size(),
                 "shard merge lost a session");

  // --- Globally ordered streams: stable k-way merges (ties go to the
  // lower shard index; within a shard order is preserved).
  {
    std::vector<std::vector<LogRecord>> log_runs;
    log_runs.reserve(k);
    for (auto& run : runs) log_runs.push_back(std::move(run.result.logs));
    m.logs = MergeSortedRuns(std::move(log_runs), LogRecordTimeOrder);
  }
  {
    std::vector<std::vector<RetrievalEvent>> ret_runs;
    ret_runs.reserve(k);
    for (auto& run : runs)
      ret_runs.push_back(std::move(run.result.retrievals));
    m.retrievals = MergeSortedRuns(
        std::move(ret_runs),
        [](const RetrievalEvent& a, const RetrievalEvent& b) {
          return a.at < b.at;
        });
  }

  // --- Session-indexed streams: interleave by canonical rank. Each rank
  // maps to exactly one (shard, local ordinal); walking ranks 0..N-1 emits
  // outcomes and chunk groups in the order the serial fleet run would.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> where(total_sessions);
  std::vector<std::vector<std::size_t>> chunk_offsets(k);
  for (std::uint32_t s = 0; s < k; ++s) {
    const ShardRun& run = runs[s];
    for (std::uint32_t l = 0; l < run.ranks.size(); ++l)
      where[run.ranks[l]] = {s, l};
    // Chunk groups are contiguous per session (sessions execute atomically
    // within a shard); prefix-sum the per-session counts into offsets.
    std::vector<std::size_t>& off = chunk_offsets[s];
    off.assign(run.result.session_outcomes.size() + 1, 0);
    for (const ChunkPerf& p : run.result.chunk_perf) ++off[p.session_seq + 1];
    for (std::size_t i = 1; i < off.size(); ++i) off[i] += off[i - 1];
  }
  m.session_outcomes.reserve(total_sessions);
  m.chunk_perf.reserve(total_chunks);
  for (std::uint32_t r = 0; r < total_sessions; ++r) {
    const auto [s, l] = where[r];
    m.session_outcomes.push_back(runs[s].result.session_outcomes[l]);
    const std::vector<std::size_t>& off = chunk_offsets[s];
    for (std::size_t i = off[l]; i < off[l + 1]; ++i) {
      ChunkPerf p = runs[s].result.chunk_perf[i];
      p.session_seq = r;  // local ordinal -> canonical global rank
      m.chunk_perf.push_back(p);
    }
  }
  (void)total_logs;
  (void)total_retrievals;
  return out;
}

std::uint64_t FingerprintServiceResult(const ServiceResult& r) {
  Fnv f;
  f.MixU64(r.logs.size());
  for (const LogRecord& l : r.logs) {
    f.MixU64(static_cast<std::uint64_t>(l.timestamp));
    f.MixU64(static_cast<std::uint64_t>(l.device_type));
    f.MixU64(l.device_id);
    f.MixU64(l.user_id);
    f.MixU64(static_cast<std::uint64_t>(l.request_type));
    f.MixU64(static_cast<std::uint64_t>(l.direction));
    f.MixU64(l.data_volume);
    f.MixDouble(l.processing_time);
    f.MixDouble(l.server_time);
    f.MixDouble(l.avg_rtt);
    f.MixU64(l.proxied ? 1 : 0);
    f.MixU64(static_cast<std::uint64_t>(l.outcome));
    f.MixU64(l.attempt);
  }
  f.MixU64(r.retrievals.size());
  for (const RetrievalEvent& e : r.retrievals) {
    f.MixU64(static_cast<std::uint64_t>(e.at));
    f.MixU64(e.user_id);
    f.MixBytes(e.file_md5.bytes.data(), e.file_md5.bytes.size());
    f.MixU64(e.size);
    f.MixU64(e.shared ? 1 : 0);
  }
  f.MixU64(r.chunk_perf.size());
  for (const ChunkPerf& p : r.chunk_perf) {
    f.MixU64(static_cast<std::uint64_t>(p.device));
    f.MixU64(static_cast<std::uint64_t>(p.direction));
    f.MixU64(p.bytes);
    f.MixDouble(p.ttran);
    f.MixDouble(p.tsrv);
    f.MixDouble(p.tclt);
    f.MixDouble(p.idle_before);
    f.MixDouble(p.rto_at_idle);
    f.MixU64(p.restarted ? 1 : 0);
    f.MixDouble(p.rtt);
    f.MixU64(p.proxied ? 1 : 0);
    f.MixU64(p.attempt);
    f.MixU64(p.session_seq);
  }
  f.MixU64(r.session_outcomes.size());
  for (const SessionOutcome& o : r.session_outcomes) {
    f.MixU64(static_cast<std::uint64_t>(o.start));
    f.MixU64(static_cast<std::uint64_t>(o.device));
    f.MixU64(o.user_id);
    f.MixU64(o.ops);
    f.MixU64(o.failed_ops);
  }
  f.MixU64(r.metadata.store_queries);
  f.MixU64(r.metadata.dedup_hits);
  f.MixU64(r.metadata.retrieve_queries);
  f.MixU64(r.metadata.retrieve_misses);
  f.MixU64(r.front_ends.size());
  for (const FrontEndStats& s : r.front_ends) {
    f.MixU64(s.file_operations);
    f.MixU64(s.chunk_stores);
    f.MixU64(s.chunk_retrievals);
    f.MixU64(s.bytes_stored);
    f.MixU64(s.bytes_served);
    f.MixU64(s.chunk_dedup_hits);
    f.MixU64(s.missing_chunks);
  }
  f.MixU64(r.faults.sessions);
  f.MixU64(r.faults.failed_sessions);
  f.MixU64(r.faults.ops);
  f.MixU64(r.faults.failed_ops);
  f.MixU64(r.faults.chunk_attempts);
  f.MixU64(r.faults.chunk_timeouts);
  f.MixU64(r.faults.chunk_server_failures);
  f.MixU64(r.faults.chunk_disconnects);
  f.MixU64(r.faults.retries);
  f.MixU64(r.faults.failovers);
  f.MixU64(r.faults.relocations);
  f.MixU64(r.faults.hedges_issued);
  f.MixU64(r.faults.hedge_wins);
  f.MixU64(r.faults.resume_skipped_chunks);
  f.MixU64(r.faults.goodput_bytes);
  f.MixU64(r.faults.wasted_bytes);
  f.MixU64(r.flows);
  f.MixU64(r.slow_start_restarts);
  f.MixU64(r.skipped_uploads);
  f.MixU64(r.missing_chunk_serves);
  f.MixU64(r.queue.scheduled);
  f.MixU64(r.queue.executed);
  f.MixU64(r.queue.cancelled);
  f.MixU64(r.queue.peak_pending);
  return f.Value();
}

}  // namespace mcloud::cloud
