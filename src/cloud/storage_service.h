// End-to-end execution of session plans through the full service stack:
// metadata server (file-level dedup) → front-end selection → chunked
// HTTP-over-TCP transfer (tcp::FlowSimulator) → request logs.
//
// This is the mechanistic backend behind every §4 figure: chunk transfer
// times, sending-window estimates, idle-time dissection, and slow-start
// restarts all *emerge* from the TCP model given the client behaviour
// distributions, rather than being sampled from the paper's result curves.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cloud/chunker.h"
#include "cloud/client_model.h"
#include "cloud/front_end_server.h"
#include "cloud/metadata_server.h"
#include "sim/event_queue.h"
#include "tcp/flow.h"
#include "workload/session_plan.h"

namespace mcloud::cloud {

struct ServiceConfig {
  std::uint64_t seed = 7;
  std::uint32_t front_ends = 4;
  Bytes chunk_size = kChunkSize;
  /// What-if knobs (§4.3): enable server window scaling, disable slow-start
  /// after idle, or batch several chunks per HTTP request.
  bool server_window_scaling = false;
  Bytes scaled_server_window = 1 * kMiB;
  bool ssai_enabled = true;
  /// Pace the first post-idle window instead of bursting (only meaningful
  /// with ssai_enabled = false); the paper's recommended alternative [28].
  bool pace_after_idle = false;
  /// Tail-loss probability of un-paced post-idle bursts (SSAI off).
  double post_idle_burst_loss_prob = 0.0;
  /// Background per-round loss probability (fast-retransmit recovery).
  double random_loss_prob = 0.0;
  std::uint32_t batch_chunks = 1;  ///< chunks per HTTP request (1 = paper)
  /// Retrieval mix: probability that a retrieve op targets popular shared
  /// content (URL sharing, §3.1.3) rather than the user's own uploads.
  double shared_content_prob = 0.35;
  std::size_t popular_contents = 512;
  double zipf_exponent = 0.9;
  ServerBehavior server{};
};

/// Per-chunk performance sample (the unit of the §4 analyses).
struct ChunkPerf {
  DeviceType device = DeviceType::kAndroid;
  Direction direction = Direction::kStore;
  Bytes bytes = 0;
  Seconds ttran = 0;        ///< transfer time (T_chunk − T_srv)
  Seconds tsrv = 0;
  Seconds tclt = 0;         ///< client processing before the next chunk
  Seconds idle_before = 0;  ///< 0 for the first chunk of a connection
  Seconds rto_at_idle = 0;
  bool restarted = false;
  Seconds rtt = 0;          ///< flow average RTT
  bool proxied = false;
};

/// One file retrieval, as seen by a front-end cache: which content, how
/// big, when. The §3.1.4 cache what-if replays this stream.
struct RetrievalEvent {
  UnixSeconds at = 0;
  std::uint64_t user_id = 0;
  Md5Digest file_md5;
  Bytes size = 0;
  bool shared = false;  ///< popular URL-shared content vs own upload
};

struct ServiceResult {
  std::vector<LogRecord> logs;          ///< time-sorted request logs
  std::vector<RetrievalEvent> retrievals;  ///< chronological
  std::vector<ChunkPerf> chunk_perf;    ///< one entry per chunk request
  MetadataStats metadata;
  std::vector<FrontEndStats> front_ends;
  std::uint64_t flows = 0;
  std::uint64_t slow_start_restarts = 0;
  std::uint64_t skipped_uploads = 0;    ///< file-level dedup hits
};

class StorageService {
 public:
  explicit StorageService(const ServiceConfig& config);

  /// Execute sessions (chronologically, via the event queue) and collect
  /// logs plus per-chunk performance samples.
  [[nodiscard]] ServiceResult Execute(
      std::span<const workload::SessionPlan> sessions);

  /// Execute one file transfer and return the raw TCP flow result including
  /// the packet trace — the Fig 13 timeline view.
  [[nodiscard]] tcp::FlowResult SimulateFlow(DeviceType device,
                                             Direction direction,
                                             Bytes file_size,
                                             std::uint64_t seed,
                                             Seconds rtt_override = 0) const;

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct FlowSetup {
    tcp::FlowConfig config;
    tcp::StallModel stall;
    tcp::DurationSampler sample_tsrv;
    tcp::DurationSampler sample_tclt;
  };
  [[nodiscard]] FlowSetup BuildFlow(DeviceType device, Direction direction,
                                    Seconds rtt, double bandwidth_bps,
                                    bool record_trace) const;

  void ExecuteSession(const workload::SessionPlan& session, Rng& rng,
                      ServiceResult& result);

  ServiceConfig config_;
  Chunker chunker_;
  MetadataServer metadata_;
  std::vector<FrontEndServer> front_ends_;
  std::vector<std::uint64_t> popular_seeds_;
  std::vector<double> zipf_weights_;
  std::uint64_t next_content_seed_ = 1;
  /// Per-user list of previously stored content seeds (for self-retrieval).
  std::unordered_map<std::uint64_t, std::vector<std::pair<std::uint64_t, Bytes>>>
      user_contents_;
};

}  // namespace mcloud::cloud
