// End-to-end execution of session plans through the full service stack:
// metadata server (file-level dedup) → front-end selection → chunked
// HTTP-over-TCP transfer (tcp::FlowSimulator) → request logs.
//
// This is the mechanistic backend behind every §4 figure: chunk transfer
// times, sending-window estimates, idle-time dissection, and slow-start
// restarts all *emerge* from the TCP model given the client behaviour
// distributions, rather than being sampled from the paper's result curves.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cloud/chunker.h"
#include "cloud/client_model.h"
#include "cloud/front_end_server.h"
#include "cloud/metadata_server.h"
#include "fault/fault_config.h"
#include "fault/fault_schedule.h"
#include "fault/retry_policy.h"
#include "sim/event_queue.h"
#include "tcp/flow.h"
#include "workload/session_plan.h"

namespace mcloud::cloud {

struct ServiceConfig {
  std::uint64_t seed = 7;
  std::uint32_t front_ends = 4;
  Bytes chunk_size = kChunkSize;
  /// What-if knobs (§4.3): enable server window scaling, disable slow-start
  /// after idle, or batch several chunks per HTTP request.
  bool server_window_scaling = false;
  Bytes scaled_server_window = 1 * kMiB;
  bool ssai_enabled = true;
  /// Pace the first post-idle window instead of bursting (only meaningful
  /// with ssai_enabled = false); the paper's recommended alternative [28].
  bool pace_after_idle = false;
  /// Tail-loss probability of un-paced post-idle bursts (SSAI off).
  double post_idle_burst_loss_prob = 0.0;
  /// Background per-round loss probability (fast-retransmit recovery).
  double random_loss_prob = 0.0;
  std::uint32_t batch_chunks = 1;  ///< chunks per HTTP request (1 = paper)
  /// Retrieval mix: probability that a retrieve op targets popular shared
  /// content (URL sharing, §3.1.3) rather than the user's own uploads.
  double shared_content_prob = 0.35;
  std::size_t popular_contents = 512;
  double zipf_exponent = 0.9;
  ServerBehavior server{};
  /// Fault injection. With every rate at zero (`faults.Any() == false`) the
  /// service runs the exact fault-free code path and RNG stream — output is
  /// bit-identical to a build without the resilience layer.
  fault::FaultConfig faults{};
  /// Client-side resilience; consulted only when faults are active.
  fault::RetryPolicy retry{};
};

/// Per-chunk performance sample (the unit of the §4 analyses).
struct ChunkPerf {
  DeviceType device = DeviceType::kAndroid;
  Direction direction = Direction::kStore;
  Bytes bytes = 0;
  Seconds ttran = 0;        ///< transfer time (T_chunk − T_srv)
  Seconds tsrv = 0;
  Seconds tclt = 0;         ///< client processing before the next chunk
  Seconds idle_before = 0;  ///< 0 for the first chunk of a connection
  Seconds rto_at_idle = 0;
  bool restarted = false;
  Seconds rtt = 0;          ///< flow average RTT
  bool proxied = false;
  std::uint32_t attempt = 1;  ///< which try delivered the chunk (1-based)
  /// Ordinal of the owning session in this run's execution order (== index
  /// into ServiceResult::session_outcomes). The sharded fleet executor
  /// rewrites it to the canonical global rank when merging shards.
  std::uint32_t session_seq = 0;
};

/// One file retrieval, as seen by a front-end cache: which content, how
/// big, when. The §3.1.4 cache what-if replays this stream.
struct RetrievalEvent {
  UnixSeconds at = 0;
  std::uint64_t user_id = 0;
  Md5Digest file_md5;
  Bytes size = 0;
  bool shared = false;  ///< popular URL-shared content vs own upload
};

/// Per-session resilience outcome (the unit of the availability analysis).
struct SessionOutcome {
  UnixSeconds start = 0;
  DeviceType device = DeviceType::kAndroid;
  std::uint64_t user_id = 0;
  std::uint32_t ops = 0;
  std::uint32_t failed_ops = 0;
  [[nodiscard]] bool Success() const { return failed_ops == 0; }
};

/// Aggregate resilience counters for one Execute() run. All zero on a
/// fault-free run except the session/op totals.
struct FaultStats {
  std::uint64_t sessions = 0;
  std::uint64_t failed_sessions = 0;  ///< at least one op abandoned
  std::uint64_t ops = 0;
  std::uint64_t failed_ops = 0;       ///< abandoned after exhausting retries
  std::uint64_t chunk_attempts = 0;   ///< chunk transfer tries, incl. retries
  std::uint64_t chunk_timeouts = 0;   ///< client chunk-deadline aborts
  std::uint64_t chunk_server_failures = 0;  ///< front-end crashed mid-chunk
  std::uint64_t chunk_disconnects = 0;      ///< cellular drop mid-chunk
  std::uint64_t retries = 0;          ///< retry rounds (backoff waits)
  std::uint64_t failovers = 0;        ///< ops rerouted off a down front-end
  std::uint64_t relocations = 0;      ///< store failovers re-homed in metadata
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedge_wins = 0;       ///< hedged duplicate beat the original
  std::uint64_t resume_skipped_chunks = 0;  ///< committed chunks not re-sent
  Bytes goodput_bytes = 0;  ///< bytes of successfully delivered chunks
  Bytes wasted_bytes = 0;   ///< bytes moved in failed attempts
};

struct ServiceResult {
  std::vector<LogRecord> logs;          ///< time-sorted request logs
  std::vector<RetrievalEvent> retrievals;  ///< chronological
  std::vector<ChunkPerf> chunk_perf;    ///< one entry per chunk request
  std::vector<SessionOutcome> session_outcomes;  ///< one per executed session
  MetadataStats metadata;
  std::vector<FrontEndStats> front_ends;
  FaultStats faults;
  std::uint64_t flows = 0;
  std::uint64_t slow_start_restarts = 0;
  std::uint64_t skipped_uploads = 0;    ///< file-level dedup hits
  std::uint64_t missing_chunk_serves = 0;  ///< retrievals served via replica
  EventQueue::Stats queue;  ///< event-core counters for this run
};

class StorageService {
 public:
  explicit StorageService(const ServiceConfig& config);

  /// Execute sessions (chronologically, via the event queue) and collect
  /// logs plus per-chunk performance samples.
  [[nodiscard]] ServiceResult Execute(
      std::span<const workload::SessionPlan> sessions);

  /// Execute one file transfer and return the raw TCP flow result including
  /// the packet trace — the Fig 13 timeline view.
  [[nodiscard]] tcp::FlowResult SimulateFlow(DeviceType device,
                                             Direction direction,
                                             Bytes file_size,
                                             std::uint64_t seed,
                                             Seconds rtt_override = 0) const;

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  /// Per device×direction sampler bundle, built once at construction. The
  /// old per-op lambda construction allocated a std::function per flow; the
  /// hot path now borrows these by pointer and allocates nothing.
  struct SamplerSet {
    tcp::StallModel stall;
    tcp::DurationSampler sample_tclt;
  };
  struct FlowSetup {
    tcp::FlowConfig config;
    const SamplerSet* samplers = nullptr;
  };
  [[nodiscard]] FlowSetup BuildFlow(DeviceType device, Direction direction,
                                    Seconds rtt, double bandwidth_bps,
                                    bool record_trace) const;

  void ExecuteSession(const workload::SessionPlan& session, Seconds sim_start,
                      Rng& rng, ServiceResult& result);

  [[nodiscard]] bool FaultsOn() const { return schedule_ != nullptr; }
  /// First healthy front-end at `t`, probing from `preferred` and wrapping;
  /// nullopt when the whole fleet is down.
  [[nodiscard]] std::optional<FrontEndId> PickHealthyFrontEnd(
      FrontEndId preferred, Seconds t,
      std::optional<FrontEndId> exclude = std::nullopt) const;
  /// Fault-mode chunked transfer: per-chunk deadline, retries with backoff,
  /// failover, client-side resume, optional hedging. Returns true when every
  /// chunk was eventually delivered.
  bool ExecuteFaultedTransfer(const workload::SessionPlan& session,
                              const workload::FileOp& op,
                              const LogRecord& base, Seconds session_rtt,
                              double bandwidth_bps, Seconds op_sim_time,
                              FrontEndId fe_id, const FileManifest& manifest,
                              Bytes size, bool proxied, Rng& rng,
                              Rng& fault_rng, ServiceResult& result);

  ServiceConfig config_;
  Chunker chunker_;
  MetadataServer metadata_;
  std::vector<FrontEndServer> front_ends_;
  /// Cached behaviour + samplers: [device][direction] (0 = store).
  ClientBehavior behaviors_[3];
  SamplerSet samplers_[3][2];
  tcp::DurationSampler sample_tsrv_;
  /// Steady-state scratch buffers reused across flows within Execute().
  std::vector<Bytes> wire_scratch_;
  tcp::FlowResult flow_scratch_;
  std::vector<std::uint64_t> popular_seeds_;
  std::vector<double> zipf_weights_;
  std::uint64_t next_content_seed_ = 1;
  /// Per-user list of previously stored content seeds (for self-retrieval).
  std::unordered_map<std::uint64_t, std::vector<std::pair<std::uint64_t, Bytes>>>
      user_contents_;
  /// Fault timeline and the dispatcher's event-driven health view; both null
  /// unless config_.faults.Any() (built per Execute() over its horizon).
  std::unique_ptr<fault::FaultSchedule> schedule_;
  std::unique_ptr<fault::FrontEndHealth> health_;
};

}  // namespace mcloud::cloud
