#include "cloud/cache.h"

#include "util/error.h"

namespace mcloud::cloud {

LruByteCache::LruByteCache(Bytes capacity) : capacity_(capacity) {
  MCLOUD_REQUIRE(capacity > 0, "cache capacity must be positive");
}

bool LruByteCache::Contains(const Md5Digest& key) const {
  return map_.find(key) != map_.end();
}

void LruByteCache::EvictUntilFits(Bytes needed) {
  while (used_ + needed > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.size;
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

bool LruByteCache::Access(const Md5Digest& key, Bytes size) {
  MCLOUD_REQUIRE(size > 0, "object size must be positive");
  ++stats_.lookups;
  stats_.bytes_requested += size;

  if (const auto it = map_.find(key); it != map_.end()) {
    ++stats_.hits;
    stats_.bytes_hit += size;
    // Move to the front (most recently used).
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  // Miss: read-through admission, unless the object cannot fit at all.
  if (size <= capacity_) {
    EvictUntilFits(size);
    lru_.push_front(Entry{key, size});
    map_[key] = lru_.begin();
    used_ += size;
    ++stats_.insertions;
  }
  return false;
}

}  // namespace mcloud::cloud
