// Sharded parallel execution of a session fleet (conservative parallel DES).
//
// Sessions in this simulator never interact across users: flows do not
// contend (front-end capacity is not the bottleneck the paper studies), the
// metadata server's cross-user effects are statistical, and every random
// draw a session consumes is derived from its own identity. That makes the
// fleet embarrassingly partitionable — the classic conservative-parallel
// discrete-event setup where the lookahead between partitions is infinite.
//
// Determinism contract (the load-bearing part): sessions are partitioned
// into a FIXED number of shards K by a hash of the user id. K is independent
// of the thread count — threads only decide how many shards run at once, so
// `--threads 1`, `--threads 4`, and `--threads <hw>` execute byte-identical
// per-shard simulations and the shard-ordered merge below reassembles
// byte-identical fleet output. Each shard runs a private StorageService +
// EventQueue with a shard-derived seed (and shard-derived fault-schedule
// seed), so no shard ever observes another's RNG stream or health timeline.
//
// With shards == 1 the executor degenerates to a single plain
// StorageService::Execute over the unpartitioned input — exactly the
// pre-sharding semantics (and the pinned bit-identity goldens).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cloud/storage_service.h"
#include "workload/session_plan.h"

namespace mcloud::cloud {

struct FleetConfig {
  ServiceConfig service{};
  /// Fixed shard count; the unit of determinism. 1 = serial passthrough.
  std::uint32_t shards = 8;
  /// Worker threads (<= shards are ever active); 0 = hardware concurrency.
  /// Never affects output, only wall-clock.
  int threads = 0;
};

/// Per-shard observability surfaced into the validate manifest.
struct ShardTelemetry {
  std::uint32_t shard = 0;
  std::uint64_t sessions = 0;
  EventQueue::Stats queue;  ///< event-core counters for the shard's run
  double wall_s = 0;        ///< wall-clock of the shard's Execute()
};

struct FleetResult {
  /// Merged, canonically ordered result — byte-identical to what a single
  /// StorageService with the same per-shard seeds would produce, for every
  /// thread count.
  ServiceResult result;
  std::vector<ShardTelemetry> shards;
};

/// Shard assignment for a user: SplitMix64(user_id) % shards. Hashing (vs
/// modulo of the raw id) decorrelates the partition from any structure in
/// id assignment, and is the stable public contract tests pin.
[[nodiscard]] std::uint32_t ShardOf(std::uint64_t user_id,
                                    std::uint32_t shards);

/// Execute `sessions` across `config.shards` deterministic shards on up to
/// `config.threads` threads and merge per-chunk / per-flow / per-session
/// results into canonical order (the order a serial event queue over the
/// whole fleet would have produced).
[[nodiscard]] FleetResult ExecuteFleet(
    const FleetConfig& config, std::span<const workload::SessionPlan> sessions);

/// FNV-1a fingerprint over every deterministic field of a ServiceResult
/// (floating-point values hashed by bit pattern, so "equal" means
/// bit-identical). Used by the determinism goldens and the validate
/// manifest; excludes nothing except struct padding.
[[nodiscard]] std::uint64_t FingerprintServiceResult(const ServiceResult& r);

}  // namespace mcloud::cloud
