// A storage front-end server (§2.1).
//
// Front-ends receive file operation requests and chunk storage/retrieval
// requests over HTTP, move chunk data to/from upstream storage servers, and
// write one log record per request — the records that constitute the
// paper's dataset (Table 1). This class owns the chunk index, the
// per-request bookkeeping, and the log emission; transfer timing is computed
// by the TCP substrate and handed in by the StorageService.
#pragma once

#include <unordered_map>
#include <vector>

#include "cloud/chunker.h"
#include "cloud/client_model.h"
#include "trace/log_record.h"

namespace mcloud::cloud {

struct FrontEndStats {
  std::uint64_t file_operations = 0;
  std::uint64_t chunk_stores = 0;
  std::uint64_t chunk_retrievals = 0;
  Bytes bytes_stored = 0;
  Bytes bytes_served = 0;
  std::uint64_t chunk_dedup_hits = 0;  ///< chunk already present on store
  std::uint64_t missing_chunks = 0;    ///< retrieval of unknown chunk
};

/// Result of a chunk retrieval at the front-end. The chunk is served either
/// way (a replica elsewhere in the fleet holds missing content), but callers
/// now see which happened instead of the miss being swallowed into stats.
enum class RetrieveOutcome : std::uint8_t {
  kServed = 0,         ///< chunk found in this front-end's index
  kServedMissing = 1,  ///< chunk unknown here; served from a replica
};

class FrontEndServer {
 public:
  FrontEndServer(std::uint32_t id, const ServerBehavior& behavior);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const ServerBehavior& behavior() const { return behavior_; }
  [[nodiscard]] const FrontEndStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t ChunkCount() const { return chunks_.size(); }

  /// Record a file operation request (metadata only) into `log`.
  void LogFileOperation(const LogRecord& base, UnixSeconds at,
                        Direction direction, Seconds tsrv, Seconds rtt,
                        std::vector<LogRecord>& log);

  /// Commit one chunk store: dedup-checks the chunk index, accounts bytes,
  /// and appends the chunk request record. Returns true when the chunk was
  /// already present (chunk-level dedup hit). `attempt`/`outcome` tag the
  /// record for fault-injection runs; defaults reproduce the fault-free log.
  bool CommitChunkStore(const LogRecord& base, UnixSeconds at,
                        const ChunkInfo& chunk, Seconds ttran, Seconds tsrv,
                        Seconds rtt, std::vector<LogRecord>& log,
                        std::uint32_t attempt = 1,
                        RequestOutcome outcome = RequestOutcome::kOk);

  /// Serve one chunk retrieval. Unknown chunks are still served (another
  /// replica holds them in the real fleet) but the outcome now says so
  /// instead of the miss being visible only in stats().
  [[nodiscard]] RetrieveOutcome ServeChunkRetrieve(
      const LogRecord& base, UnixSeconds at, const ChunkInfo& chunk,
      Seconds ttran, Seconds tsrv, Seconds rtt, std::vector<LogRecord>& log,
      std::uint32_t attempt = 1,
      RequestOutcome outcome = RequestOutcome::kOk);

 private:
  std::uint32_t id_;
  ServerBehavior behavior_;
  FrontEndStats stats_;
  std::unordered_map<Md5Digest, Bytes> chunks_;  ///< chunk index
};

}  // namespace mcloud::cloud
