// LRU object cache — the "web cache proxy" of the paper's §3.1.4
// implication: a considerable fraction of retrievals hit popular shared
// content (videos, packages distributed by URL), so a front-end cache can
// absorb much of the retrieval load before it reaches the storage servers.
//
// Capacity is tracked in bytes (objects are whole files); eviction is strict
// LRU. The cache is deliberately storage-agnostic: keys are content hashes,
// values are sizes — replaying a retrieval stream through it answers the
// provisioning question "how large a cache buys how much egress?".
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/md5.h"
#include "util/units.h"

namespace mcloud::cloud {

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  Bytes bytes_requested = 0;
  Bytes bytes_hit = 0;  ///< egress served from cache

  [[nodiscard]] double HitRatio() const {
    return lookups ? static_cast<double>(hits) / lookups : 0.0;
  }
  [[nodiscard]] double ByteHitRatio() const {
    return bytes_requested
               ? static_cast<double>(bytes_hit) / bytes_requested
               : 0.0;
  }
};

class LruByteCache {
 public:
  /// `capacity` — total bytes the cache may hold. Objects larger than the
  /// capacity are never admitted.
  explicit LruByteCache(Bytes capacity);

  /// Look up `key`; on a miss, admit it with `size` bytes (evicting LRU
  /// entries as needed). Returns true on a hit. This fetch-on-miss
  /// behaviour matches a read-through proxy.
  bool Access(const Md5Digest& key, Bytes size);

  /// Look up without admitting.
  [[nodiscard]] bool Contains(const Md5Digest& key) const;

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] std::size_t ObjectCount() const { return map_.size(); }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    Md5Digest key;
    Bytes size;
  };
  void EvictUntilFits(Bytes needed);

  Bytes capacity_;
  Bytes used_ = 0;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Md5Digest, std::list<Entry>::iterator> map_;
  CacheStats stats_;
};

}  // namespace mcloud::cloud
