#include "cloud/front_end_server.h"

namespace mcloud::cloud {

FrontEndServer::FrontEndServer(std::uint32_t id,
                               const ServerBehavior& behavior)
    : id_(id), behavior_(behavior) {}

void FrontEndServer::LogFileOperation(const LogRecord& base, UnixSeconds at,
                                      Direction direction, Seconds tsrv,
                                      Seconds rtt,
                                      std::vector<LogRecord>& log) {
  ++stats_.file_operations;
  LogRecord r = base;
  r.timestamp = at;
  r.request_type = RequestType::kFileOperation;
  r.direction = direction;
  r.data_volume = 0;
  r.server_time = tsrv;
  r.processing_time = tsrv + rtt;
  r.avg_rtt = rtt;
  log.push_back(r);
}

void FrontEndServer::CommitChunkStore(const LogRecord& base, UnixSeconds at,
                                      const ChunkInfo& chunk, Seconds ttran,
                                      Seconds tsrv, Seconds rtt,
                                      std::vector<LogRecord>& log) {
  ++stats_.chunk_stores;
  stats_.bytes_stored += chunk.size;
  if (!chunks_.emplace(chunk.md5, chunk.size).second)
    ++stats_.chunk_dedup_hits;

  LogRecord r = base;
  r.timestamp = at;
  r.request_type = RequestType::kChunkRequest;
  r.direction = Direction::kStore;
  r.data_volume = chunk.size;
  r.server_time = tsrv;
  r.processing_time = ttran + tsrv;
  r.avg_rtt = rtt;
  log.push_back(r);
}

void FrontEndServer::ServeChunkRetrieve(const LogRecord& base, UnixSeconds at,
                                        const ChunkInfo& chunk, Seconds ttran,
                                        Seconds tsrv, Seconds rtt,
                                        std::vector<LogRecord>& log) {
  ++stats_.chunk_retrievals;
  stats_.bytes_served += chunk.size;
  if (chunks_.find(chunk.md5) == chunks_.end()) ++stats_.missing_chunks;

  LogRecord r = base;
  r.timestamp = at;
  r.request_type = RequestType::kChunkRequest;
  r.direction = Direction::kRetrieve;
  r.data_volume = chunk.size;
  r.server_time = tsrv;
  r.processing_time = ttran + tsrv;
  r.avg_rtt = rtt;
  log.push_back(r);
}

}  // namespace mcloud::cloud
