#include "cloud/front_end_server.h"

namespace mcloud::cloud {

FrontEndServer::FrontEndServer(std::uint32_t id,
                               const ServerBehavior& behavior)
    : id_(id), behavior_(behavior) {}

void FrontEndServer::LogFileOperation(const LogRecord& base, UnixSeconds at,
                                      Direction direction, Seconds tsrv,
                                      Seconds rtt,
                                      std::vector<LogRecord>& log) {
  ++stats_.file_operations;
  LogRecord r = base;
  r.timestamp = at;
  r.request_type = RequestType::kFileOperation;
  r.direction = direction;
  r.data_volume = 0;
  r.server_time = tsrv;
  r.processing_time = tsrv + rtt;
  r.avg_rtt = rtt;
  log.push_back(r);
}

bool FrontEndServer::CommitChunkStore(const LogRecord& base, UnixSeconds at,
                                      const ChunkInfo& chunk, Seconds ttran,
                                      Seconds tsrv, Seconds rtt,
                                      std::vector<LogRecord>& log,
                                      std::uint32_t attempt,
                                      RequestOutcome outcome) {
  ++stats_.chunk_stores;
  stats_.bytes_stored += chunk.size;
  const bool dedup_hit = !chunks_.emplace(chunk.md5, chunk.size).second;
  if (dedup_hit) ++stats_.chunk_dedup_hits;

  LogRecord r = base;
  r.timestamp = at;
  r.request_type = RequestType::kChunkRequest;
  r.direction = Direction::kStore;
  r.data_volume = chunk.size;
  r.server_time = tsrv;
  r.processing_time = ttran + tsrv;
  r.avg_rtt = rtt;
  r.attempt = attempt;
  r.outcome = outcome;
  log.push_back(r);
  return dedup_hit;
}

RetrieveOutcome FrontEndServer::ServeChunkRetrieve(
    const LogRecord& base, UnixSeconds at, const ChunkInfo& chunk,
    Seconds ttran, Seconds tsrv, Seconds rtt, std::vector<LogRecord>& log,
    std::uint32_t attempt, RequestOutcome outcome) {
  ++stats_.chunk_retrievals;
  stats_.bytes_served += chunk.size;
  const bool missing = chunks_.find(chunk.md5) == chunks_.end();
  if (missing) ++stats_.missing_chunks;

  LogRecord r = base;
  r.timestamp = at;
  r.request_type = RequestType::kChunkRequest;
  r.direction = Direction::kRetrieve;
  r.data_volume = chunk.size;
  r.server_time = tsrv;
  r.processing_time = ttran + tsrv;
  r.avg_rtt = rtt;
  r.attempt = attempt;
  r.outcome = outcome;
  log.push_back(r);
  return missing ? RetrieveOutcome::kServedMissing : RetrieveOutcome::kServed;
}

}  // namespace mcloud::cloud
