#include "cloud/storage_service.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace mcloud::cloud {

StorageService::StorageService(const ServiceConfig& config)
    : config_(config),
      chunker_(config.chunk_size),
      metadata_(config.front_ends) {
  MCLOUD_REQUIRE(config.front_ends > 0, "need at least one front-end");
  MCLOUD_REQUIRE(config.batch_chunks >= 1, "batch factor must be >= 1");
  for (std::uint32_t i = 0; i < config.front_ends; ++i)
    front_ends_.emplace_back(i, config.server);

  // Popular shared contents (videos, packages) with Zipf popularity.
  popular_seeds_.reserve(config.popular_contents);
  zipf_weights_.reserve(config.popular_contents);
  for (std::size_t i = 0; i < config.popular_contents; ++i) {
    popular_seeds_.push_back(
        0xC0FFEEULL * (i + 1));  // disjoint from per-upload seeds
    zipf_weights_.push_back(
        std::pow(static_cast<double>(i + 1), -config.zipf_exponent));
  }

  // Freeze the per-device/direction samplers once; the same closures used
  // to be rebuilt (and heap-allocated) for every flow in BuildFlow.
  sample_tsrv_ = [spec = config.server.tsrv](Rng& r) { return spec.Sample(r); };
  for (int d = 0; d < 3; ++d) {
    const ClientBehavior& client = behaviors_[d] =
        BehaviorFor(static_cast<DeviceType>(d));
    SamplerSet& store = samplers_[d][0];
    store.stall.block = client.stall_block;
    if (client.stall_block > 0) {
      store.stall.sample = [spec = client.stall_duration](Rng& r) {
        return spec.Sample(r);
      };
    }
    store.sample_tclt = [spec = client.store_tclt](Rng& r) {
      return spec.Sample(r);
    };
    SamplerSet& retrieve = samplers_[d][1];
    retrieve.stall.block = client.retrieve_stall_block;
    if (client.retrieve_stall_block > 0) {
      retrieve.stall.sample = [spec = client.retrieve_stall_duration](Rng& r) {
        return spec.Sample(r);
      };
    }
    retrieve.sample_tclt = [spec = client.retrieve_tclt](Rng& r) {
      return spec.Sample(r);
    };
  }
}

StorageService::FlowSetup StorageService::BuildFlow(DeviceType device,
                                                    Direction direction,
                                                    Seconds rtt,
                                                    double bandwidth_bps,
                                                    bool record_trace) const {
  const auto d = static_cast<int>(device);
  const ClientBehavior& client = behaviors_[d];
  const ServerBehavior& server = config_.server;

  FlowSetup setup;
  setup.config.mss = 1448;
  setup.config.rtt = rtt;
  setup.config.bandwidth_bps = bandwidth_bps;
  setup.config.record_trace = record_trace;
  setup.config.cc.slow_start_after_idle = config_.ssai_enabled;
  setup.config.cc.pace_after_idle = config_.pace_after_idle;
  setup.config.post_idle_burst_loss_prob = config_.post_idle_burst_loss_prob;
  setup.config.random_loss_prob = config_.random_loss_prob;

  if (direction == Direction::kStore) {
    // Client is the TCP data sender; the front-end's advertised window caps
    // it (64 KB unless the window-scaling what-if is on).
    setup.config.sender_window = config_.server_window_scaling
                                     ? config_.scaled_server_window
                                     : server.receive_window;
    setup.samplers = &samplers_[d][0];
  } else {
    // Server is the sender; mobile clients enable window scaling, so the
    // effective cap is the client's multi-MB window. Slow readers stall the
    // sender through flow control (receive-side stalls).
    setup.config.sender_window = client.receive_window;
    setup.samplers = &samplers_[d][1];
  }
  return setup;
}

tcp::FlowResult StorageService::SimulateFlow(DeviceType device,
                                             Direction direction,
                                             Bytes file_size,
                                             std::uint64_t seed,
                                             Seconds rtt_override) const {
  Rng rng(seed);
  const ClientBehavior client = BehaviorFor(device);
  const Seconds rtt =
      rtt_override > 0 ? rtt_override : MobileRttSpec().Sample(rng);
  const double bw = (direction == Direction::kStore)
                        ? client.uplink_bps.Sample(rng)
                        : client.downlink_bps.Sample(rng);
  FlowSetup setup = BuildFlow(device, direction, rtt, bw, true);

  std::vector<Bytes> chunks = tcp::SplitIntoChunks(
      file_size, config_.chunk_size * config_.batch_chunks);
  const tcp::FlowSimulator sim(setup.config);
  return sim.Run(chunks, sample_tsrv_, setup.samplers->sample_tclt,
                 setup.samplers->stall, rng);
}

void StorageService::ExecuteSession(const workload::SessionPlan& session,
                                    Seconds sim_start, Rng& rng,
                                    ServiceResult& result) {
  const ClientBehavior client = BehaviorFor(session.device_type);
  const bool is_mobile = session.device_type != DeviceType::kPc;
  const Seconds session_rtt =
      is_mobile ? MobileRttSpec().Sample(rng)
                : LogNormalSpec{0.040, 0.45}.Sample(rng);
  const bool proxied = rng.Bernoulli(0.06);

  LogRecord base;
  base.device_type = session.device_type;
  base.device_id = session.device_id;
  base.user_id = session.user_id;
  base.proxied = proxied;

  SessionOutcome outcome;
  outcome.start = session.start;
  outcome.device = session.device_type;
  outcome.user_id = session.user_id;
  outcome.ops = static_cast<std::uint32_t>(session.ops.size());

  // Fault randomness (retry jitter, disconnect draws, hedge duplicates)
  // comes from its own stream keyed on the fault seed and the session
  // identity — it never touches the workload's session stream, so the
  // fault-free draws above and below are unaffected by the fault layer.
  Rng fault_rng = Rng::ForStream(
      config_.faults.seed ^ 0xF417F417ULL,
      session.user_id ^ (session.device_id << 20) ^
          static_cast<std::uint64_t>(session.start));

  for (const workload::FileOp& op : session.ops) {
    const UnixSeconds op_time =
        session.start + static_cast<UnixSeconds>(op.offset);

    // --- Resolve content identity and consult the metadata server. The
    // manifest is a pure function of (content seed, size); compute it once
    // per op and reuse it everywhere below.
    std::uint64_t content_seed;
    Bytes size = op.size;
    bool upload_needed = true;
    FrontEndId fe_id = 0;
    FileManifest manifest;

    bool shared_content = false;
    if (op.direction == Direction::kStore) {
      content_seed = next_content_seed_++;
      manifest = chunker_.Manifest(content_seed, size);
      const StoreDecision decision =
          metadata_.QueryStore(session.user_id, manifest);
      fe_id = decision.front_end;
      upload_needed = !decision.already_stored;
      user_contents_[session.user_id].emplace_back(content_seed, size);
      if (!upload_needed) ++result.skipped_uploads;
    } else {
      // Retrieval: popular shared content by URL, or the user's own upload.
      const auto& own = user_contents_[session.user_id];
      if (!own.empty() && !rng.Bernoulli(config_.shared_content_prob)) {
        const auto& pick = own[rng.UniformInt(own.size())];
        content_seed = pick.first;
        size = pick.second;
      } else {
        content_seed = popular_seeds_[rng.PickWeighted(zipf_weights_)];
        // Shared content is the large-object regime (Fig 5c): videos and
        // packages; size keyed to the content so every downloader agrees.
        Rng content_rng(content_seed);
        size = FromMB(2.0 + content_rng.ExponentialMean(120.0));
        shared_content = true;
      }
      manifest = chunker_.Manifest(content_seed, size);
      const StoreDecision registered =
          metadata_.QueryStore(0 /* origin uploader */, manifest);
      const auto located =
          metadata_.QueryRetrieve(session.user_id, manifest.file_md5);
      fe_id = located.value_or(registered.front_end);

      RetrievalEvent ev;
      ev.at = op_time;
      ev.user_id = session.user_id;
      ev.file_md5 = manifest.file_md5;
      ev.size = size;
      ev.shared = shared_content;
      result.retrievals.push_back(ev);
    }

    const Seconds op_sim_time = sim_start + op.offset;

    // --- Health-checked dispatch (fault mode): the dispatcher's
    // event-driven registry flags suspect front-ends; a probe against the
    // fault timeline at the op's actual instant confirms, and the op fails
    // over to the next healthy server. Store failovers are re-homed in the
    // metadata server so later retrievals find the chunks.
    if (FaultsOn() &&
        (!health_->IsUp(fe_id) ||
         schedule_->FrontEndDown(fe_id, op_sim_time))) {
      const auto healthy = PickHealthyFrontEnd(fe_id, op_sim_time);
      if (!healthy) {
        ++outcome.failed_ops;  // whole fleet down: the request never lands
        continue;
      }
      if (*healthy != fe_id) {
        ++result.faults.failovers;
        if (op.direction == Direction::kStore && upload_needed) {
          metadata_.Relocate(manifest.file_md5, *healthy);
          ++result.faults.relocations;
        }
        fe_id = *healthy;
      }
    }
    FrontEndServer& fe = front_ends_[fe_id];

    // --- File operation request (metadata exchange with the front-end).
    Seconds op_tsrv = config_.server.tsrv.Sample(rng) * 0.3;
    if (FaultsOn()) op_tsrv *= schedule_->TsrvFactor(fe_id, op_sim_time);
    fe.LogFileOperation(base, op_time, op.direction, op_tsrv, session_rtt,
                        result.logs);

    if (op.direction == Direction::kStore && !upload_needed)
      continue;  // dedup: the metadata server suppressed the upload

    // --- Chunked transfer over one TCP connection.
    const double bw = (op.direction == Direction::kStore)
                          ? client.uplink_bps.Sample(rng)
                          : client.downlink_bps.Sample(rng);

    if (FaultsOn()) {
      if (!ExecuteFaultedTransfer(session, op, base, session_rtt, bw,
                                  op_sim_time, fe_id, manifest, size, proxied,
                                  rng, fault_rng, result))
        ++outcome.failed_ops;
      continue;
    }

    const FlowSetup setup = BuildFlow(session.device_type, op.direction,
                                      session_rtt, bw, false);
    if (config_.batch_chunks <= 1) {
      wire_scratch_.clear();
      wire_scratch_.reserve(manifest.chunks.size());
      for (const ChunkInfo& c : manifest.chunks)
        wire_scratch_.push_back(c.size);
    } else {
      tcp::SplitIntoChunksInto(size, config_.chunk_size * config_.batch_chunks,
                               wire_scratch_);
    }

    const tcp::FlowSimulator sim(setup.config);
    sim.RunInto(wire_scratch_, sample_tsrv_, setup.samplers->sample_tclt,
                setup.samplers->stall, rng, flow_scratch_);
    const tcp::FlowResult& flow = flow_scratch_;
    ++result.flows;
    result.slow_start_restarts += flow.restarts;

    // --- Account each chunk and emit its log record.
    Seconds flow_offset = op.offset;
    for (std::size_t i = 0; i < flow.chunks.size(); ++i) {
      const tcp::ChunkTiming& t = flow.chunks[i];
      const UnixSeconds at = session.start + static_cast<UnixSeconds>(
          flow_offset + t.request_at + t.transfer_time);

      // The manifest chunk (for hashes) corresponding to this wire chunk;
      // with batching, attribute to the first chunk of the batch.
      const ChunkInfo& info =
          manifest.chunks[std::min<std::size_t>(
              i * config_.batch_chunks, manifest.chunks.size() - 1)];
      ChunkInfo wire_info = info;
      wire_info.size = t.bytes;

      if (op.direction == Direction::kStore) {
        fe.CommitChunkStore(base, at, wire_info, t.transfer_time,
                            t.server_time, flow.avg_rtt, result.logs);
      } else {
        if (fe.ServeChunkRetrieve(base, at, wire_info, t.transfer_time,
                                  t.server_time, flow.avg_rtt, result.logs) ==
            RetrieveOutcome::kServedMissing)
          ++result.missing_chunk_serves;
      }

      ChunkPerf perf;
      perf.device = session.device_type;
      perf.direction = op.direction;
      perf.bytes = t.bytes;
      perf.ttran = t.transfer_time;
      perf.tsrv = t.server_time;
      perf.tclt = t.client_time;
      perf.idle_before = t.idle_before;
      perf.rto_at_idle = t.rto_at_idle;
      perf.restarted = t.restarted;
      perf.rtt = flow.avg_rtt;
      perf.proxied = proxied;
      perf.session_seq =
          static_cast<std::uint32_t>(result.session_outcomes.size());
      result.chunk_perf.push_back(perf);
    }
  }

  ++result.faults.sessions;
  result.faults.ops += outcome.ops;
  result.faults.failed_ops += outcome.failed_ops;
  if (!outcome.Success()) ++result.faults.failed_sessions;
  result.session_outcomes.push_back(outcome);
}

std::optional<FrontEndId> StorageService::PickHealthyFrontEnd(
    FrontEndId preferred, Seconds t, std::optional<FrontEndId> exclude) const {
  const auto n = static_cast<FrontEndId>(front_ends_.size());
  for (FrontEndId i = 0; i < n; ++i) {
    const FrontEndId fe = (preferred + i) % n;
    if (exclude && fe == *exclude) continue;
    if (schedule_->FrontEndDown(fe, t)) continue;
    return fe;
  }
  return std::nullopt;
}

bool StorageService::ExecuteFaultedTransfer(
    const workload::SessionPlan& session, const workload::FileOp& op,
    const LogRecord& base, Seconds session_rtt, double bandwidth_bps,
    Seconds op_sim_time, FrontEndId fe_id, const FileManifest& manifest,
    Bytes size, bool proxied, Rng& rng, Rng& fault_rng,
    ServiceResult& result) {
  const fault::RetryPolicy& policy = config_.retry;

  // Wire chunks for the connection; each remembers which manifest chunk
  // backs it (for hashes) and how many tries it has consumed.
  struct Pending {
    Bytes bytes = 0;
    std::size_t wire_index = 0;
    std::uint32_t attempts = 0;
  };
  std::vector<Pending> pending;
  if (config_.batch_chunks <= 1) {
    pending.reserve(manifest.chunks.size());
    for (std::size_t i = 0; i < manifest.chunks.size(); ++i)
      pending.push_back(Pending{manifest.chunks[i].size, i, 0});
  } else {
    const std::vector<Bytes> batched = tcp::SplitIntoChunks(
        size, config_.chunk_size * config_.batch_chunks);
    pending.reserve(batched.size());
    for (std::size_t i = 0; i < batched.size(); ++i)
      pending.push_back(Pending{batched[i], i, 0});
  }
  const std::size_t total_chunks = pending.size();

  // Simulated instant (absolute) → trace timestamp.
  const auto to_unix = [&](Seconds s) {
    return session.start +
           static_cast<UnixSeconds>(op.offset + (s - op_sim_time));
  };

  Seconds clock = op_sim_time;  // advances across retry rounds
  bool first_attempt = true;

  while (!pending.empty()) {
    // Client-side resume: chunks committed by earlier attempts stay off the
    // wire — only what is still pending is re-sent.
    if (!first_attempt)
      result.faults.resume_skipped_chunks += total_chunks - pending.size();

    // Health-checked (re)connect with failover; a store that lands on a
    // different server than the metadata decision is re-homed.
    const auto healthy = PickHealthyFrontEnd(fe_id, clock);
    if (!healthy) return false;  // whole fleet down: give up
    if (*healthy != fe_id) {
      ++result.faults.failovers;
      if (op.direction == Direction::kStore) {
        metadata_.Relocate(manifest.file_md5, *healthy);
        ++result.faults.relocations;
      }
      fe_id = *healthy;
    }

    FlowSetup setup = BuildFlow(session.device_type, op.direction,
                                session_rtt, bandwidth_bps, false);
    setup.config.chunk_deadline = policy.chunk_timeout;
    setup.config.random_loss_prob += schedule_->ExtraLossProb(clock);
    const tcp::DurationSampler* tsrv = &sample_tsrv_;
    tcp::DurationSampler degraded_tsrv;
    if (const double f = schedule_->TsrvFactor(fe_id, clock); f != 1.0) {
      degraded_tsrv = [spec = config_.server.tsrv, f](Rng& r) {
        return spec.Sample(r) * f;
      };
      tsrv = &degraded_tsrv;
    }

    std::vector<Bytes> sizes;
    sizes.reserve(pending.size());
    for (const Pending& p : pending) sizes.push_back(p.bytes);

    const tcp::FlowSimulator sim(setup.config);
    const tcp::FlowResult flow =
        sim.Run(sizes, *tsrv, setup.samplers->sample_tclt,
                setup.samplers->stall, rng);
    ++result.flows;
    result.slow_start_restarts += flow.restarts;
    first_attempt = false;

    // Walk the attempt: the first chunk that times out, loses its front-end
    // mid-transfer, or drops its connection truncates the attempt there.
    std::size_t completed = 0;
    enum class Fail { kNone, kTimeout, kCrash, kDisconnect };
    Fail fail = Fail::kNone;
    Seconds fail_elapsed = 0;

    for (std::size_t k = 0; k < flow.chunks.size() && fail == Fail::kNone;
         ++k) {
      const tcp::ChunkTiming& t = flow.chunks[k];
      Pending& p = pending[k];
      const Seconds chunk_start = clock + t.request_at;
      const Seconds chunk_end = chunk_start + t.transfer_time;
      ++result.faults.chunk_attempts;
      ++p.attempts;

      if (t.aborted) {
        fail = Fail::kTimeout;
        ++result.faults.chunk_timeouts;
        result.faults.wasted_bytes += t.bytes;
        fail_elapsed = chunk_end - clock;
        // The front-end logs the broken request when the client walks away.
        LogRecord r = base;
        r.timestamp = to_unix(chunk_end);
        r.request_type = RequestType::kChunkRequest;
        r.direction = op.direction;
        r.data_volume = t.bytes;
        r.server_time = t.server_time;
        r.processing_time = t.transfer_time;
        r.avg_rtt = flow.avg_rtt;
        r.attempt = p.attempts;
        r.outcome = RequestOutcome::kTimedOut;
        result.logs.push_back(r);
      } else if (schedule_->FrontEndDownDuring(fe_id, chunk_start,
                                               chunk_end)) {
        // The front-end crashed mid-transfer; nothing was logged server-side.
        fail = Fail::kCrash;
        ++result.faults.chunk_server_failures;
        result.faults.wasted_bytes += t.bytes;
        fail_elapsed = chunk_end - clock;
      } else if (const double dp = schedule_->DisconnectProb(chunk_start);
                 dp > 0 && fault_rng.Bernoulli(dp)) {
        // Cellular drop inside a loss burst: the connection dies outright.
        fail = Fail::kDisconnect;
        ++result.faults.chunk_disconnects;
        result.faults.wasted_bytes += t.bytes;
        fail_elapsed = chunk_end - clock;
      } else {
        // Success — optionally hedge a straggler to a second front-end and
        // keep whichever copy finishes first. The trigger and the race are
        // on total chunk service time (transfer + server processing): a
        // degraded server shows up in T_srv, not in the transfer itself.
        Seconds ttran = t.transfer_time;
        Seconds srv_time = t.server_time;
        RequestOutcome oc = RequestOutcome::kOk;
        FrontEndId serve_fe = fe_id;
        if (policy.hedge && ttran + srv_time > policy.hedge_delay &&
            front_ends_.size() > 1) {
          const auto alt = PickHealthyFrontEnd(
              (fe_id + 1) % static_cast<FrontEndId>(front_ends_.size()),
              chunk_start, fe_id);
          if (alt) {
            ++result.faults.hedges_issued;
            // The duplicate runs against the alternate server's own health
            // (its degradation factor, not the original's).
            const double alt_f = schedule_->TsrvFactor(*alt, chunk_start);
            const tcp::DurationSampler dup_tsrv =
                [spec = config_.server.tsrv, alt_f](Rng& r) {
                  return spec.Sample(r) * alt_f;
                };
            const Bytes one[] = {t.bytes};
            const tcp::FlowResult dup =
                sim.Run(one, dup_tsrv, setup.samplers->sample_tclt,
                        setup.samplers->stall, fault_rng);
            // The duplicate fires hedge_delay into the original's service
            // time and pays a fresh connection handshake.
            if (!dup.aborted && !dup.chunks.empty()) {
              const tcp::ChunkTiming& d = dup.chunks.front();
              const Seconds dup_total = policy.hedge_delay +
                                        setup.config.rtt + d.transfer_time +
                                        d.server_time;
              if (dup_total < ttran + srv_time) {
                ttran = policy.hedge_delay + setup.config.rtt +
                        d.transfer_time;
                srv_time = d.server_time;
                oc = RequestOutcome::kHedged;
                serve_fe = *alt;
                ++result.faults.hedge_wins;
              }
            }
          }
        }

        const ChunkInfo& info = manifest.chunks[std::min<std::size_t>(
            p.wire_index * config_.batch_chunks, manifest.chunks.size() - 1)];
        ChunkInfo wire_info = info;
        wire_info.size = t.bytes;
        const UnixSeconds at = to_unix(chunk_end);
        FrontEndServer& srv = front_ends_[serve_fe];
        if (op.direction == Direction::kStore) {
          srv.CommitChunkStore(base, at, wire_info, ttran, srv_time,
                               flow.avg_rtt, result.logs, p.attempts, oc);
        } else {
          if (srv.ServeChunkRetrieve(base, at, wire_info, ttran, srv_time,
                                     flow.avg_rtt, result.logs, p.attempts,
                                     oc) == RetrieveOutcome::kServedMissing)
            ++result.missing_chunk_serves;
        }

        ChunkPerf perf;
        perf.device = session.device_type;
        perf.direction = op.direction;
        perf.bytes = t.bytes;
        perf.ttran = ttran;
        perf.tsrv = srv_time;
        perf.tclt = t.client_time;
        perf.idle_before = t.idle_before;
        perf.rto_at_idle = t.rto_at_idle;
        perf.restarted = t.restarted;
        perf.rtt = flow.avg_rtt;
        perf.proxied = proxied;
        perf.attempt = p.attempts;
        perf.session_seq =
            static_cast<std::uint32_t>(result.session_outcomes.size());
        result.chunk_perf.push_back(perf);
        result.faults.goodput_bytes += t.bytes;
        ++completed;
      }
    }

    if (fail == Fail::kNone) return true;  // every pending chunk delivered

    // Committed chunks leave the pending set for good (resumable transfer);
    // the chunk the attempt died on keeps its attempt count.
    const Pending failed_chunk = pending[completed];
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(completed));
    if (failed_chunk.attempts >= policy.max_attempts) {
      // Give up: record the abandonment so availability analysis sees it.
      LogRecord r = base;
      r.timestamp = to_unix(clock + fail_elapsed);
      r.request_type = RequestType::kChunkRequest;
      r.direction = op.direction;
      r.data_volume = 0;
      r.avg_rtt = session_rtt;
      r.attempt = failed_chunk.attempts;
      r.outcome = RequestOutcome::kFailed;
      result.logs.push_back(r);
      return false;
    }
    ++result.faults.retries;
    clock += fail_elapsed +
             policy.Backoff(failed_chunk.attempts + 1, fault_rng);
  }
  return true;
}

ServiceResult StorageService::Execute(
    std::span<const workload::SessionPlan> sessions) {
  ServiceResult result;

  // Schedule sessions on the event queue in start order; each session
  // executes atomically at its start time (flows do not contend across
  // sessions — front-end capacity is not the bottleneck the paper studies).
  EventQueue queue;
  UnixSeconds t0 = sessions.empty() ? 0 : sessions.front().start;
  for (const auto& s : sessions) t0 = std::min(t0, s.start);

  // Fault mode: expand the fault timeline over the run's horizon and drive
  // the dispatcher's health registry from crash/restart events on the same
  // queue the sessions run on (installed first, so a crash at time t is
  // visible to a session starting at t).
  const bool faults_on = config_.faults.Any();
  std::vector<EventQueue::EventId> health_events;
  Seconds last_start = 0;
  if (faults_on && !sessions.empty()) {
    Seconds horizon = 0;
    for (const auto& s : sessions) {
      const Seconds rel = static_cast<Seconds>(s.start - t0);
      last_start = std::max(last_start, rel);
      horizon = std::max(
          horizon, rel + (s.ops.empty() ? 0.0 : s.ops.back().offset));
    }
    horizon += 6 * 3600.0;  // slack for flows and retries past the last op
    schedule_ = std::make_unique<fault::FaultSchedule>(
        config_.faults, config_.front_ends, horizon);
    health_ = std::make_unique<fault::FrontEndHealth>(config_.front_ends);
    health_events = schedule_->InstallHealthEvents(queue, *health_);
  }

  Rng rng(config_.seed);
  for (const auto& session : sessions) {
    queue.ScheduleAt(static_cast<Seconds>(session.start - t0),
                     [this, &session, &rng, &result, t0] {
                       Rng session_rng = rng.Fork(session.user_id ^
                                                  (session.device_id << 20) ^
                                                  static_cast<std::uint64_t>(
                                                      session.start));
                       ExecuteSession(session,
                                      static_cast<Seconds>(session.start - t0),
                                      session_rng, result);
                     });
  }
  if (faults_on) {
    // Run through the last session, then retract the unused tail of the
    // health timeline instead of churning through it.
    queue.RunUntil(last_start);
    for (const EventQueue::EventId id : health_events) queue.Cancel(id);
  }
  queue.RunAll();
  result.queue = queue.GetStats();

  std::sort(result.logs.begin(), result.logs.end(), LogRecordTimeOrder);
  std::sort(result.retrievals.begin(), result.retrievals.end(),
            [](const RetrievalEvent& a, const RetrievalEvent& b) {
              return a.at < b.at;
            });
  result.metadata = metadata_.stats();
  for (const auto& fe : front_ends_) result.front_ends.push_back(fe.stats());
  schedule_.reset();  // per-Execute state; the schedule dies with the run
  health_.reset();
  return result;
}

}  // namespace mcloud::cloud
