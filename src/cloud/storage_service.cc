#include "cloud/storage_service.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace mcloud::cloud {

StorageService::StorageService(const ServiceConfig& config)
    : config_(config),
      chunker_(config.chunk_size),
      metadata_(config.front_ends) {
  MCLOUD_REQUIRE(config.front_ends > 0, "need at least one front-end");
  MCLOUD_REQUIRE(config.batch_chunks >= 1, "batch factor must be >= 1");
  for (std::uint32_t i = 0; i < config.front_ends; ++i)
    front_ends_.emplace_back(i, config.server);

  // Popular shared contents (videos, packages) with Zipf popularity.
  popular_seeds_.reserve(config.popular_contents);
  zipf_weights_.reserve(config.popular_contents);
  for (std::size_t i = 0; i < config.popular_contents; ++i) {
    popular_seeds_.push_back(
        0xC0FFEEULL * (i + 1));  // disjoint from per-upload seeds
    zipf_weights_.push_back(
        std::pow(static_cast<double>(i + 1), -config.zipf_exponent));
  }
}

StorageService::FlowSetup StorageService::BuildFlow(DeviceType device,
                                                    Direction direction,
                                                    Seconds rtt,
                                                    double bandwidth_bps,
                                                    bool record_trace) const {
  const ClientBehavior client = BehaviorFor(device);
  const ServerBehavior& server = config_.server;

  FlowSetup setup;
  setup.config.mss = 1448;
  setup.config.rtt = rtt;
  setup.config.bandwidth_bps = bandwidth_bps;
  setup.config.record_trace = record_trace;
  setup.config.cc.slow_start_after_idle = config_.ssai_enabled;
  setup.config.cc.pace_after_idle = config_.pace_after_idle;
  setup.config.post_idle_burst_loss_prob = config_.post_idle_burst_loss_prob;
  setup.config.random_loss_prob = config_.random_loss_prob;

  if (direction == Direction::kStore) {
    // Client is the TCP data sender; the front-end's advertised window caps
    // it (64 KB unless the window-scaling what-if is on).
    setup.config.sender_window = config_.server_window_scaling
                                     ? config_.scaled_server_window
                                     : server.receive_window;
    setup.stall.block = client.stall_block;
    if (client.stall_block > 0) {
      setup.stall.sample = [spec = client.stall_duration](Rng& r) {
        return spec.Sample(r);
      };
    }
    setup.sample_tclt = [spec = client.store_tclt](Rng& r) {
      return spec.Sample(r);
    };
  } else {
    // Server is the sender; mobile clients enable window scaling, so the
    // effective cap is the client's multi-MB window. Slow readers stall the
    // sender through flow control (receive-side stalls).
    setup.config.sender_window = client.receive_window;
    setup.stall.block = client.retrieve_stall_block;
    if (client.retrieve_stall_block > 0) {
      setup.stall.sample = [spec = client.retrieve_stall_duration](Rng& r) {
        return spec.Sample(r);
      };
    }
    setup.sample_tclt = [spec = client.retrieve_tclt](Rng& r) {
      return spec.Sample(r);
    };
  }
  setup.sample_tsrv = [spec = server.tsrv](Rng& r) { return spec.Sample(r); };
  return setup;
}

tcp::FlowResult StorageService::SimulateFlow(DeviceType device,
                                             Direction direction,
                                             Bytes file_size,
                                             std::uint64_t seed,
                                             Seconds rtt_override) const {
  Rng rng(seed);
  const ClientBehavior client = BehaviorFor(device);
  const Seconds rtt =
      rtt_override > 0 ? rtt_override : MobileRttSpec().Sample(rng);
  const double bw = (direction == Direction::kStore)
                        ? client.uplink_bps.Sample(rng)
                        : client.downlink_bps.Sample(rng);
  FlowSetup setup = BuildFlow(device, direction, rtt, bw, true);

  std::vector<Bytes> chunks = tcp::SplitIntoChunks(
      file_size, config_.chunk_size * config_.batch_chunks);
  const tcp::FlowSimulator sim(setup.config);
  return sim.Run(chunks, setup.sample_tsrv, setup.sample_tclt, setup.stall,
                 rng);
}

void StorageService::ExecuteSession(const workload::SessionPlan& session,
                                    Rng& rng, ServiceResult& result) {
  const ClientBehavior client = BehaviorFor(session.device_type);
  const bool is_mobile = session.device_type != DeviceType::kPc;
  const Seconds session_rtt =
      is_mobile ? MobileRttSpec().Sample(rng)
                : LogNormalSpec{0.040, 0.45}.Sample(rng);
  const bool proxied = rng.Bernoulli(0.06);

  LogRecord base;
  base.device_type = session.device_type;
  base.device_id = session.device_id;
  base.user_id = session.user_id;
  base.proxied = proxied;

  for (const workload::FileOp& op : session.ops) {
    const UnixSeconds op_time =
        session.start + static_cast<UnixSeconds>(op.offset);

    // --- Resolve content identity and consult the metadata server.
    std::uint64_t content_seed;
    Bytes size = op.size;
    bool upload_needed = true;
    FrontEndId fe_id = 0;

    bool shared_content = false;
    if (op.direction == Direction::kStore) {
      content_seed = next_content_seed_++;
      const FileManifest manifest = chunker_.Manifest(content_seed, size);
      const StoreDecision decision =
          metadata_.QueryStore(session.user_id, manifest);
      fe_id = decision.front_end;
      upload_needed = !decision.already_stored;
      user_contents_[session.user_id].emplace_back(content_seed, size);
      if (!upload_needed) ++result.skipped_uploads;
    } else {
      // Retrieval: popular shared content by URL, or the user's own upload.
      const auto& own = user_contents_[session.user_id];
      if (!own.empty() && !rng.Bernoulli(config_.shared_content_prob)) {
        const auto& pick = own[rng.UniformInt(own.size())];
        content_seed = pick.first;
        size = pick.second;
      } else {
        content_seed = popular_seeds_[rng.PickWeighted(zipf_weights_)];
        // Shared content is the large-object regime (Fig 5c): videos and
        // packages; size keyed to the content so every downloader agrees.
        Rng content_rng(content_seed);
        size = FromMB(2.0 + content_rng.ExponentialMean(120.0));
        shared_content = true;
      }
      const FileManifest manifest = chunker_.Manifest(content_seed, size);
      const StoreDecision registered =
          metadata_.QueryStore(0 /* origin uploader */, manifest);
      const auto located =
          metadata_.QueryRetrieve(session.user_id, manifest.file_md5);
      fe_id = located.value_or(registered.front_end);

      RetrievalEvent ev;
      ev.at = op_time;
      ev.user_id = session.user_id;
      ev.file_md5 = manifest.file_md5;
      ev.size = size;
      ev.shared = shared_content;
      result.retrievals.push_back(ev);
    }

    FrontEndServer& fe = front_ends_[fe_id];

    // --- File operation request (metadata exchange with the front-end).
    const Seconds op_tsrv = config_.server.tsrv.Sample(rng) * 0.3;
    fe.LogFileOperation(base, op_time, op.direction, op_tsrv, session_rtt,
                        result.logs);

    if (op.direction == Direction::kStore && !upload_needed)
      continue;  // dedup: the metadata server suppressed the upload

    // --- Chunked transfer over one TCP connection.
    const double bw = (op.direction == Direction::kStore)
                          ? client.uplink_bps.Sample(rng)
                          : client.downlink_bps.Sample(rng);
    FlowSetup setup = BuildFlow(session.device_type, op.direction,
                                session_rtt, bw, false);
    const FileManifest manifest = chunker_.Manifest(content_seed, size);
    std::vector<Bytes> wire_chunks;
    if (config_.batch_chunks <= 1) {
      for (const ChunkInfo& c : manifest.chunks) wire_chunks.push_back(c.size);
    } else {
      wire_chunks = tcp::SplitIntoChunks(
          size, config_.chunk_size * config_.batch_chunks);
    }

    const tcp::FlowSimulator sim(setup.config);
    const tcp::FlowResult flow = sim.Run(
        wire_chunks, setup.sample_tsrv, setup.sample_tclt, setup.stall, rng);
    ++result.flows;
    result.slow_start_restarts += flow.restarts;

    // --- Account each chunk and emit its log record.
    Seconds flow_offset = op.offset;
    for (std::size_t i = 0; i < flow.chunks.size(); ++i) {
      const tcp::ChunkTiming& t = flow.chunks[i];
      const UnixSeconds at = session.start + static_cast<UnixSeconds>(
          flow_offset + t.request_at + t.transfer_time);

      // The manifest chunk (for hashes) corresponding to this wire chunk;
      // with batching, attribute to the first chunk of the batch.
      const ChunkInfo& info =
          manifest.chunks[std::min<std::size_t>(
              i * config_.batch_chunks, manifest.chunks.size() - 1)];
      ChunkInfo wire_info = info;
      wire_info.size = t.bytes;

      if (op.direction == Direction::kStore) {
        fe.CommitChunkStore(base, at, wire_info, t.transfer_time,
                            t.server_time, flow.avg_rtt, result.logs);
      } else {
        fe.ServeChunkRetrieve(base, at, wire_info, t.transfer_time,
                              t.server_time, flow.avg_rtt, result.logs);
      }

      ChunkPerf perf;
      perf.device = session.device_type;
      perf.direction = op.direction;
      perf.bytes = t.bytes;
      perf.ttran = t.transfer_time;
      perf.tsrv = t.server_time;
      perf.tclt = t.client_time;
      perf.idle_before = t.idle_before;
      perf.rto_at_idle = t.rto_at_idle;
      perf.restarted = t.restarted;
      perf.rtt = flow.avg_rtt;
      perf.proxied = proxied;
      result.chunk_perf.push_back(perf);
    }
  }
}

ServiceResult StorageService::Execute(
    std::span<const workload::SessionPlan> sessions) {
  ServiceResult result;

  // Schedule sessions on the event queue in start order; each session
  // executes atomically at its start time (flows do not contend across
  // sessions — front-end capacity is not the bottleneck the paper studies).
  EventQueue queue;
  UnixSeconds t0 = sessions.empty() ? 0 : sessions.front().start;
  for (const auto& s : sessions) t0 = std::min(t0, s.start);

  Rng rng(config_.seed);
  for (const auto& session : sessions) {
    queue.ScheduleAt(static_cast<Seconds>(session.start - t0),
                     [this, &session, &rng, &result] {
                       Rng session_rng = rng.Fork(session.user_id ^
                                                  (session.device_id << 20) ^
                                                  static_cast<std::uint64_t>(
                                                      session.start));
                       ExecuteSession(session, session_rng, result);
                     });
  }
  queue.RunAll();

  std::sort(result.logs.begin(), result.logs.end(), LogRecordTimeOrder);
  std::sort(result.retrievals.begin(), result.retrievals.end(),
            [](const RetrievalEvent& a, const RetrievalEvent& b) {
              return a.at < b.at;
            });
  result.metadata = metadata_.stats();
  for (const auto& fe : front_ends_) result.front_ends.push_back(fe.stats());
  return result;
}

}  // namespace mcloud::cloud
