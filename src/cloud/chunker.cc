#include "cloud/chunker.h"

#include "tcp/flow.h"
#include "util/error.h"

namespace mcloud::cloud {
namespace {

void UpdateU64(Md5& h, std::uint64_t v) {
  std::array<std::uint8_t, 8> bytes;
  for (std::size_t i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  h.Update(std::span<const std::uint8_t>(bytes));
}

}  // namespace

Chunker::Chunker(Bytes chunk_size) : chunk_size_(chunk_size) {
  MCLOUD_REQUIRE(chunk_size > 0, "chunk size must be positive");
}

std::size_t Chunker::ChunkCount(Bytes file_size) const {
  MCLOUD_REQUIRE(file_size > 0, "file size must be positive");
  return static_cast<std::size_t>((file_size + chunk_size_ - 1) /
                                  chunk_size_);
}

FileManifest Chunker::Manifest(std::uint64_t content_seed,
                               Bytes file_size) const {
  FileManifest m;
  m.size = file_size;

  std::uint32_t index = 0;
  for (Bytes chunk : tcp::SplitIntoChunks(file_size, chunk_size_)) {
    Md5 h;
    h.Update("mcloud-chunk");
    UpdateU64(h, content_seed);
    UpdateU64(h, index);
    UpdateU64(h, chunk);
    m.chunks.push_back(ChunkInfo{index, chunk, h.Finalize()});
    ++index;
  }

  // File MD5: hash of the content identity plus total size (equivalent to
  // hashing the full content, given the synthetic content model).
  Md5 h;
  h.Update("mcloud-file");
  UpdateU64(h, content_seed);
  UpdateU64(h, file_size);
  m.file_md5 = h.Finalize();
  return m;
}

}  // namespace mcloud::cloud
