// The metadata server (§2.1).
//
// Store path: the client sends the file's name+MD5; if any storage server
// already holds that content, the file is added to the user's space and the
// upload is skipped entirely (file-level deduplication). Otherwise the
// client is directed to the closest storage front-end.
// Retrieve path: the client resolves a URL to the file MD5 and a front-end
// to fetch from.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cloud/chunker.h"

namespace mcloud::cloud {

using FrontEndId = std::uint32_t;

struct StoreDecision {
  bool already_stored = false;       ///< dedup hit: no upload needed
  FrontEndId front_end = 0;          ///< where to upload / where it lives
};

struct MetadataStats {
  std::uint64_t store_queries = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t retrieve_queries = 0;
  std::uint64_t retrieve_misses = 0;
};

class MetadataServer {
 public:
  /// `front_ends` — number of storage front-end servers to spread new
  /// uploads across.
  explicit MetadataServer(FrontEndId front_ends);

  /// Store-side query. If the content is new, assigns a front-end and
  /// registers the file as stored there (the upload is assumed to follow).
  [[nodiscard]] StoreDecision QueryStore(std::uint64_t user_id,
                                         const FileManifest& manifest);

  /// Retrieve-side query: resolve a file MD5 to the front-end holding it.
  /// Returns nullopt if the content was never stored.
  [[nodiscard]] std::optional<FrontEndId> QueryRetrieve(
      std::uint64_t user_id, const Md5Digest& file_md5);

  /// Re-home a stored file: failover moved an upload off the front-end the
  /// store decision named, so later retrievals must resolve to the server
  /// that actually holds the chunks. No-op for unknown content.
  void Relocate(const Md5Digest& file_md5, FrontEndId front_end);

  /// Files in a user's space.
  [[nodiscard]] std::size_t UserFileCount(std::uint64_t user_id) const;
  /// Distinct contents known to the service.
  [[nodiscard]] std::size_t DistinctFiles() const { return location_.size(); }

  [[nodiscard]] const MetadataStats& stats() const { return stats_; }

 private:
  FrontEndId front_ends_;
  FrontEndId next_assignment_ = 0;
  std::unordered_map<Md5Digest, FrontEndId> location_;
  std::unordered_map<std::uint64_t, std::unordered_set<Md5Digest>> spaces_;
  MetadataStats stats_;
};

}  // namespace mcloud::cloud
