#include "cloud/client_model.h"

#include <cmath>

#include "model/paper_params.h"
#include "util/error.h"

namespace mcloud::cloud {

double LogNormalSpec::Sample(Rng& rng) const {
  return rng.LogNormal(std::log(median), sigma);
}

double LogNormalSpec::Mean() const {
  return median * std::exp(sigma * sigma / 2.0);
}

ClientBehavior BehaviorFor(DeviceType device) {
  ClientBehavior b;
  switch (device) {
    case DeviceType::kAndroid:
      // Calibrated so that (T_srv + T_clt + RTT) exceeds the RTO for ~60%
      // of upload gaps (Fig 16c) and the median upload chunk takes ~4.1 s
      // (Fig 12a) through stall-induced throttling.
      b.store_tclt = {0.140, 0.85};
      b.retrieve_tclt = {0.100, 1.80};  // p90 ≈ 1 s (Fig 16b)
      b.stall_block = 64 * kKiB;
      b.stall_duration = {0.240, 0.75};
      b.retrieve_stall_block = 256 * kKiB;
      b.retrieve_stall_duration = {0.150, 0.80};
      b.receive_window = paper::kAndroidReceiveWindow;  // 4 MB
      b.uplink_bps = {16.0e6, 0.60};
      b.downlink_bps = {20.0e6, 0.60};
      return b;
    case DeviceType::kIos:
      // iOS idles exceed the RTO for only ~18% of upload gaps; chunks
      // stream with negligible mid-chunk pauses (median upload ≈ 1.6 s).
      b.store_tclt = {0.045, 0.60};
      b.retrieve_tclt = {0.060, 0.45};
      b.stall_block = 64 * kKiB;
      b.stall_duration = {0.060, 0.55};
      b.receive_window = paper::kIosReceiveWindow;  // 2 MB
      b.uplink_bps = {16.0e6, 0.60};
      b.downlink_bps = {20.0e6, 0.60};
      return b;
    case DeviceType::kPc:
      b.store_tclt = {0.050, 0.50};
      b.retrieve_tclt = {0.030, 0.40};
      b.stall_block = 0;
      b.stall_duration = {0.0, 0.1};
      b.receive_window = 4 * kMiB;
      b.uplink_bps = {25.0e6, 0.40};
      b.downlink_bps = {40.0e6, 0.40};
      return b;
  }
  throw Error("invalid DeviceType");
}

LogNormalSpec MobileRttSpec() { return {paper::kMedianRtt, 0.90}; }

}  // namespace mcloud::cloud
