// The FigureCheck registry: every figure and table the repo reproduces,
// mapped to (a) the analysis output that reproduces it and (b) a declarative
// tolerance — one effect-size statistic, one threshold, pass iff
// statistic <= threshold.
//
// Three gate families (see tolerance.h for the calibration story):
//   * share / parameter deviations with sample-size-aware bands,
//   * distributional gates (KS against the paper's Table 2 models, AD
//     against the refit mixtures, χ²/n against categorical splits),
//   * structural gates (orderings the paper asserts — peak hour, write
//     dominance, device asymmetries) where the statistic counts violations
//     and the threshold is 0.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cloud/storage_service.h"
#include "core/report.h"
#include "tcp/flow.h"

namespace mcloud::validate {

/// Everything the checks read: the §2/§3 report (with raw samples kept),
/// the §4 fleet simulation outputs, and the two Fig 13 single-flow traces.
struct ValidationInputs {
  core::FullReport report;
  /// Per-chunk samples + request logs of the §4 fleet run (single-file
  /// sessions through the full service stack).
  std::vector<cloud::ChunkPerf> fleet_perf;
  std::vector<LogRecord> fleet_logs;
  /// One 8 MiB store flow per platform, with packet traces (Fig 13).
  tcp::FlowResult android_flow;
  tcp::FlowResult ios_flow;
};

/// What a check measured. `p_value` is the classical test p-value where one
/// exists (KS/AD/χ² gates) and -1 where the gate is structural; the
/// pass/fail decision always uses `statistic <= threshold`.
struct CheckResult {
  std::string metric;    ///< e.g. "KS D", "chi2/n", "violations"
  double statistic = 0;
  double threshold = 0;
  double p_value = -1;
  std::size_t n = 0;     ///< sample size behind the statistic
  std::string detail;    ///< human-readable observed-vs-paper note
};

struct FigureCheck {
  std::string id;      ///< stable slug, e.g. "fig02_session_split"
  std::string figure;  ///< paper anchor, e.g. "Fig 2" / "Table 2"
  std::string what;    ///< one-line description of the claim
  std::function<CheckResult(const ValidationInputs&)> run;
};

/// One evaluated check (CheckResult plus identity, verdict, and wall time).
struct CheckOutcome {
  std::string id;
  std::string figure;
  std::string what;
  CheckResult result;
  bool passed = false;
  double wall_s = 0;
};

/// The full registry, in paper order. Built once, immutable.
[[nodiscard]] const std::vector<FigureCheck>& FigureChecks();

/// Run every registered check against `inputs`, timing each one.
[[nodiscard]] std::vector<CheckOutcome> EvaluateChecks(
    const ValidationInputs& inputs);

}  // namespace mcloud::validate
