#include "validate/gof.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/special_functions.h"
#include "util/error.h"

namespace mcloud::validate {
namespace {

std::vector<double> Sorted(std::span<const double> sample) {
  std::vector<double> s(sample.begin(), sample.end());
  std::sort(s.begin(), s.end());
  return s;
}

struct Group {
  double value;
  std::uint64_t count;
};

/// Non-empty groups in ascending value order, with the total count.
std::pair<std::vector<Group>, std::uint64_t> SortedGroups(
    std::span<const double> values, std::span<const std::uint64_t> counts) {
  MCLOUD_REQUIRE(values.size() == counts.size(),
                 "grouped GoF: values/counts size mismatch");
  std::vector<Group> gs;
  gs.reserve(values.size());
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (counts[i] == 0) continue;
    gs.push_back({values[i], counts[i]});
    n += counts[i];
  }
  MCLOUD_REQUIRE(n > 0, "grouped GoF needs a non-empty sample");
  std::sort(gs.begin(), gs.end(),
            [](const Group& a, const Group& b) { return a.value < b.value; });
  return {std::move(gs), n};
}

}  // namespace

GofResult KsOneSample(std::span<const double> sample,
                      const std::function<double(double)>& model_cdf) {
  MCLOUD_REQUIRE(!sample.empty(), "KS needs a non-empty sample");
  const std::vector<double> s = Sorted(sample);
  const auto n = static_cast<double>(s.size());
  double d = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double f = model_cdf(s[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, f - lo, hi - f});
  }
  GofResult r;
  r.statistic = d;
  r.n = s.size();
  const double sqrt_n = std::sqrt(n);
  r.p_value = KolmogorovSurvival((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return r;
}

GofResult KsTwoSample(std::span<const double> a, std::span<const double> b) {
  MCLOUD_REQUIRE(!a.empty() && !b.empty(), "KS needs non-empty samples");
  const std::vector<double> sa = Sorted(a);
  const std::vector<double> sb = Sorted(b);
  const auto na = static_cast<double>(sa.size());
  const auto nb = static_cast<double>(sb.size());
  // Merge walk: the supremum |Fa - Fb| can only change at sample points.
  double d = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  GofResult r;
  r.statistic = d;
  r.n = sa.size();
  r.m = sb.size();
  const double ne = na * nb / (na + nb);
  r.p_value = KolmogorovSurvival(std::sqrt(ne) * d);
  return r;
}

GofResult AndersonDarling(std::span<const double> sample,
                          const std::function<double(double)>& model_cdf) {
  MCLOUD_REQUIRE(!sample.empty(), "AD needs a non-empty sample");
  const std::vector<double> s = Sorted(sample);
  const auto n = static_cast<double>(s.size());
  // A² = -n - (1/n) Σ (2i-1)[ln F(x_i) + ln(1 - F(x_{n+1-i}))], clamping
  // F away from {0,1} so boundary samples cannot produce infinities.
  constexpr double kEps = 1e-12;
  double sum = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double f_lo =
        std::clamp(model_cdf(s[i]), kEps, 1.0 - kEps);
    const double f_hi =
        std::clamp(model_cdf(s[s.size() - 1 - i]), kEps, 1.0 - kEps);
    sum += (2.0 * static_cast<double>(i) + 1.0) *
           (std::log(f_lo) + std::log1p(-f_hi));
  }
  GofResult r;
  r.statistic = -n - sum / n;
  r.n = s.size();
  r.p_value = AndersonDarlingSurvival(r.statistic);
  return r;
}

GofResult KsGrouped(std::span<const double> values,
                    std::span<const std::uint64_t> counts,
                    const std::function<double(double)>& model_cdf) {
  const auto [gs, total] = SortedGroups(values, counts);
  const auto n = static_cast<double>(total);
  double d = 0;
  std::uint64_t before = 0;
  for (const Group& g : gs) {
    const double f = model_cdf(g.value);
    const double lo = static_cast<double>(before) / n;
    const double hi = static_cast<double>(before + g.count) / n;
    d = std::max({d, f - lo, hi - f});
    before += g.count;
  }
  GofResult r;
  r.statistic = d;
  r.n = total;
  const double sqrt_n = std::sqrt(n);
  r.p_value = KolmogorovSurvival((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return r;
}

GofResult AndersonDarlingGrouped(
    std::span<const double> values, std::span<const std::uint64_t> counts,
    const std::function<double(double)>& model_cdf) {
  const auto [gs, total] = SortedGroups(values, counts);
  const auto n = static_cast<double>(total);
  constexpr double kEps = 1e-12;
  double sum = 0;
  std::uint64_t before = 0;
  for (const Group& g : gs) {
    const double f = std::clamp(model_cdf(g.value), kEps, 1.0 - kEps);
    const auto a = static_cast<double>(before);
    const auto c = static_cast<double>(g.count);
    sum += c * (2.0 * a + c) * std::log(f) +
           c * (2.0 * (n - a) - c) * std::log1p(-f);
    before += g.count;
  }
  GofResult r;
  r.statistic = -n - sum / n;
  r.n = total;
  r.p_value = AndersonDarlingSurvival(r.statistic);
  return r;
}

}  // namespace mcloud::validate
