// Goodness-of-fit test statistics for the paper-fidelity validation layer.
//
// Three gates, matching the statistical toolset of the paper and the
// reproducibility literature (PBench, request-cloning): Kolmogorov–Smirnov
// (one- and two-sample), Anderson–Darling (one-sample, tail-sensitive), and
// — via src/stats/chi_square — the categorical chi-square. All p-values use
// asymptotic distributions from stats/special_functions; the FigureCheck
// thresholds additionally gate on *effect size* (D, A²/n, χ²/n) so that the
// huge synthetic samples do not reject on statistically-detectable but
// practically-irrelevant deviations.
#pragma once

#include <functional>
#include <span>

namespace mcloud::validate {

struct GofResult {
  double statistic = 0;  ///< D for KS, A² for Anderson–Darling
  double p_value = 1;    ///< asymptotic, see special_functions
  std::size_t n = 0;     ///< first (or only) sample size
  std::size_t m = 0;     ///< second sample size (two-sample KS only)
};

/// One-sample Kolmogorov–Smirnov test of `sample` against a continuous
/// model CDF. The p-value applies the Stephens small-sample correction
/// t = (sqrt(n) + 0.12 + 0.11/sqrt(n)) · D before the Kolmogorov survival.
[[nodiscard]] GofResult KsOneSample(
    std::span<const double> sample,
    const std::function<double(double)>& model_cdf);

/// Two-sample Kolmogorov–Smirnov test: supremum distance between the two
/// empirical CDFs, p-value via the effective size n·m/(n+m).
[[nodiscard]] GofResult KsTwoSample(std::span<const double> a,
                                    std::span<const double> b);

/// One-sample Anderson–Darling test of `sample` against a continuous model
/// CDF (case 0: fully specified null). More weight in the tails than KS —
/// the gate of choice for the heavy-tailed file-size models. A²/n converges
/// to a model-mismatch integral, so thresholds on A²/n are sample-size
/// stable.
[[nodiscard]] GofResult AndersonDarling(
    std::span<const double> sample,
    const std::function<double(double)>& model_cdf);

}  // namespace mcloud::validate
