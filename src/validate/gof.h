// Goodness-of-fit test statistics for the paper-fidelity validation layer.
//
// Three gates, matching the statistical toolset of the paper and the
// reproducibility literature (PBench, request-cloning): Kolmogorov–Smirnov
// (one- and two-sample), Anderson–Darling (one-sample, tail-sensitive), and
// — via src/stats/chi_square — the categorical chi-square. All p-values use
// asymptotic distributions from stats/special_functions; the FigureCheck
// thresholds additionally gate on *effect size* (D, A²/n, χ²/n) so that the
// huge synthetic samples do not reject on statistically-detectable but
// practically-irrelevant deviations.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace mcloud::validate {

struct GofResult {
  double statistic = 0;  ///< D for KS, A² for Anderson–Darling
  double p_value = 1;    ///< asymptotic, see special_functions
  std::size_t n = 0;     ///< first (or only) sample size
  std::size_t m = 0;     ///< second sample size (two-sample KS only)
};

/// One-sample Kolmogorov–Smirnov test of `sample` against a continuous
/// model CDF. The p-value applies the Stephens small-sample correction
/// t = (sqrt(n) + 0.12 + 0.11/sqrt(n)) · D before the Kolmogorov survival.
[[nodiscard]] GofResult KsOneSample(
    std::span<const double> sample,
    const std::function<double(double)>& model_cdf);

/// Two-sample Kolmogorov–Smirnov test: supremum distance between the two
/// empirical CDFs, p-value via the effective size n·m/(n+m).
[[nodiscard]] GofResult KsTwoSample(std::span<const double> a,
                                    std::span<const double> b);

/// One-sample Anderson–Darling test of `sample` against a continuous model
/// CDF (case 0: fully specified null). More weight in the tails than KS —
/// the gate of choice for the heavy-tailed file-size models. A²/n converges
/// to a model-mismatch integral, so thresholds on A²/n are sample-size
/// stable.
[[nodiscard]] GofResult AndersonDarling(
    std::span<const double> sample,
    const std::function<double(double)>& model_cdf);

// Grouped variants for the sketch-backed online engine: the sample arrives
// as (value, count) groups — e.g. a LogBins bin mean with its bin count —
// instead of raw observations. Both are the exact closed forms of their raw
// counterparts evaluated on a sample with `count` copies of each value
// (rank sums collapse to arithmetic series), so a single-group-per-value
// input reproduces the ungrouped statistic bit-for-bit. Groups need not be
// pre-sorted. `n` in the result is the total count.

/// Grouped one-sample KS: D = max over groups of
/// max(F(v) - a/n, (a+c)/n - F(v)) with `a` the count before the group.
[[nodiscard]] GofResult KsGrouped(
    std::span<const double> values, std::span<const std::uint64_t> counts,
    const std::function<double(double)>& model_cdf);

/// Grouped one-sample Anderson–Darling:
/// A² = -n - (1/n)[Σ c(2a+c)·ln F(v) + Σ c(2(n-a)-c)·ln(1-F(v))].
[[nodiscard]] GofResult AndersonDarlingGrouped(
    std::span<const double> values, std::span<const std::uint64_t> counts,
    const std::function<double(double)>& model_cdf);

}  // namespace mcloud::validate
