#include "validate/validator.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "cloud/storage_service.h"
#include "core/pipeline.h"
#include "trace/partitioned_trace.h"
#include "model/paper_params.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mcloud::validate {
namespace {

using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The §4 fleet: `flows` single-file sessions (78.4% android, 60/40
/// store/retrieve, photo-batch uploads vs larger downloads), mirroring the
/// paper's packet-trace collection at one front-end and the bench_util
/// Section4Result recipe.
std::vector<workload::SessionPlan> FleetPlans(const ValidateOptions& o) {
  Rng rng(o.seed ^ 0x53454331u);  // independent of the workload streams
  std::vector<workload::SessionPlan> plans;
  plans.reserve(o.fleet_flows);
  for (std::size_t i = 0; i < o.fleet_flows; ++i) {
    workload::SessionPlan s;
    s.user_id = i + 1;
    s.device_id = i + 1;
    s.device_type = rng.Bernoulli(paper::kAndroidShare) ? DeviceType::kAndroid
                                                        : DeviceType::kIos;
    s.start = kTraceStart + static_cast<UnixSeconds>(i * 30);
    workload::FileOp op;
    if (rng.Bernoulli(0.6)) {
      op.direction = Direction::kStore;
      op.size = FromMB(1.0 + rng.ExponentialMean(4.0));
    } else {
      op.direction = Direction::kRetrieve;
      op.size = FromMB(2.0 + rng.ExponentialMean(20.0));
    }
    s.ops.push_back(op);
    plans.push_back(s);
  }
  return plans;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void Append(std::string& out, const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

void AppendOutcome(std::string& out, const CheckOutcome& o) {
  Append(out, "    {\"id\": \"%s\", \"figure\": \"", o.id.c_str());
  AppendEscaped(out, o.figure);
  out += "\", \"what\": \"";
  AppendEscaped(out, o.what);
  Append(out, "\", \"metric\": \"%s\", \"statistic\": %.9g, "
              "\"threshold\": %.9g, \"p_value\": %.9g, \"n\": %zu, "
              "\"passed\": %s, \"wall_s\": %.6f, \"detail\": \"",
         o.result.metric.c_str(), o.result.statistic, o.result.threshold,
         o.result.p_value, o.result.n, o.passed ? "true" : "false",
         o.wall_s);
  AppendEscaped(out, o.result.detail);
  out += "\"}";
}

void AppendRun(std::string& out, const ValidationRun& r) {
  Append(out, "{\n  \"users\": %zu,\n  \"seed\": %llu,\n"
              "  \"out_of_core\": %s,\n  \"concurrent\": %s,\n"
              "  \"fleet_flows\": %zu,\n  \"checks\": %zu,\n"
              "  \"passed\": %zu,\n  \"all_passed\": %s,\n"
              "  \"fingerprint\": \"%016llx\",\n"
              "  \"timings_s\": {\"generate\": %.3f, \"analyze\": %.3f, "
              "\"fleet\": %.3f, \"checks\": %.3f, \"total\": %.3f,\n"
              "    \"sketch_bytes\": %zu,\n"
              "    \"fleet_shards\": %zu, \"fleet_fingerprint\": \"%016llx\","
              " \"per_shard\": [",
         r.options.users, static_cast<unsigned long long>(r.options.seed),
         r.options.out_of_core ? "true" : "false",
         r.options.concurrent ? "true" : "false",
         r.options.fleet_flows, r.outcomes.size(), r.Passed(),
         r.AllPassed() ? "true" : "false",
         static_cast<unsigned long long>(ManifestFingerprint(r)),
         r.generate_s, r.analyze_s, r.fleet_s, r.checks_s, r.total_s,
         r.sketch_bytes, r.fleet_shards.size(),
         static_cast<unsigned long long>(r.fleet_fingerprint));
  for (std::size_t i = 0; i < r.fleet_shards.size(); ++i) {
    const cloud::ShardTelemetry& t = r.fleet_shards[i];
    Append(out, "%s\n      {\"shard\": %u, \"sessions\": %llu, "
                "\"scheduled\": %llu, \"executed\": %llu, "
                "\"cancelled\": %llu, \"peak_pending\": %llu, "
                "\"wall_s\": %.6f}",
           i ? "," : "", t.shard,
           static_cast<unsigned long long>(t.sessions),
           static_cast<unsigned long long>(t.queue.scheduled),
           static_cast<unsigned long long>(t.queue.executed),
           static_cast<unsigned long long>(t.queue.cancelled),
           static_cast<unsigned long long>(t.queue.peak_pending), t.wall_s);
  }
  out += r.fleet_shards.empty() ? "]},\n  \"results\": [\n"
                                : "\n    ]},\n  \"results\": [\n";
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    AppendOutcome(out, r.outcomes[i]);
    out += i + 1 < r.outcomes.size() ? ",\n" : "\n";
  }
  out += "  ]\n}";
}

}  // namespace

std::size_t ValidationRun::Passed() const {
  std::size_t n = 0;
  for (const auto& o : outcomes)
    if (o.passed) ++n;
  return n;
}

ValidationInputs BuildValidationInputs(const ValidateOptions& options,
                                       ValidationRun* timings) {
  ValidationInputs in;

  auto t0 = Clock::now();
  workload::WorkloadConfig cfg;
  cfg.seed = options.seed;
  cfg.population.mobile_users = options.users;
  cfg.population.pc_only_users = options.pc_users == ValidateOptions::kPcUsersAuto
                                     ? options.users / 3
                                     : options.pc_users;
  cfg.model = options.model;
  cfg.threads = options.threads;
  const workload::WorkloadGenerator generator(cfg);
  core::PipelineOptions popts;
  popts.threads = options.threads;
  if (options.concurrent) {
    // Analyze-while-generate: the spill slices feed the concurrent pipeline
    // as they seal, so generation and analysis share one overlapped walk
    // (generate_s stays 0 — there is no separate generation phase).
    namespace fs = std::filesystem;
    const bool owned = options.spill_dir.empty();
    const fs::path dir =
        owned ? fs::temp_directory_path() /
                    ("mcloud-spill-" + std::to_string(::getpid()) + "-" +
                     std::to_string(options.seed) + "-" +
                     std::to_string(options.users))
              : fs::path(options.spill_dir);
    fs::create_directories(dir);
    workload::SpillConfig spill;
    spill.dir = dir;
    // A third of the two-phase slice size: the overlapped pipeline keeps up
    // to three slices in flight (producer buffer, queue slot, consumer), so
    // this holds the resident total at the same budget.
    spill.max_buffer_bytes =
        std::max<std::size_t>(options.max_memory_mb, std::size_t{64}) *
        (1024 * 1024 / 9);
    popts.max_memory_mb = options.max_memory_mb;
    const core::AnalysisPipeline pipeline(popts);
    in.report = pipeline.RunConcurrent(
        [&](const core::AnalysisPipeline::SliceConsumer& consume) {
          (void)generator.GenerateToPartitions(spill, consume);
        });
    if (timings) timings->analyze_s = Since(t0);
    if (owned) {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
  } else if (options.out_of_core) {
    // Bounded-memory path: spill the generation into a partitioned on-disk
    // trace, then stream it back through the out-of-core engine. Both
    // phases share options.max_memory_mb; generation gets a third of it as
    // the AoS emission buffer (records cost ~80 B buffered vs ~31 B
    // staged, and the analysis walks also carry dense per-user state).
    namespace fs = std::filesystem;
    const bool owned = options.spill_dir.empty();
    const fs::path dir =
        owned ? fs::temp_directory_path() /
                    ("mcloud-spill-" + std::to_string(::getpid()) + "-" +
                     std::to_string(options.seed) + "-" +
                     std::to_string(options.users))
              : fs::path(options.spill_dir);
    fs::create_directories(dir);
    workload::SpillConfig spill;
    spill.dir = dir;
    spill.max_buffer_bytes =
        std::max<std::size_t>(options.max_memory_mb, std::size_t{64}) *
        (1024 * 1024 / 3);
    (void)generator.GenerateToPartitions(spill);
    if (timings) timings->generate_s = Since(t0);

    t0 = Clock::now();
    popts.max_memory_mb = options.max_memory_mb;
    const PartitionedTrace part = PartitionedTrace::Open(dir);
    in.report = core::AnalysisPipeline(popts).RunOutOfCore(part);
    if (timings) timings->analyze_s = Since(t0);
    if (owned) {
      std::error_code ec;
      fs::remove_all(dir, ec);  // best-effort cleanup of the temp spill
    }
  } else {
    const workload::ColumnarWorkload workload = generator.GenerateColumnar();
    if (timings) timings->generate_s = Since(t0);

    t0 = Clock::now();
    in.report = core::AnalysisPipeline(popts).Run(workload.trace);
    if (timings) timings->analyze_s = Since(t0);
  }
  if (timings) timings->sketch_bytes = in.report.sketches.MemoryBytes();

  t0 = Clock::now();
  cloud::FleetConfig fleet_cfg;
  fleet_cfg.service.seed = options.seed;
  fleet_cfg.shards = options.fleet_shards;
  fleet_cfg.threads = options.threads;
  cloud::FleetResult fleet = cloud::ExecuteFleet(fleet_cfg, FleetPlans(options));
  if (timings) {
    timings->fleet_fingerprint = cloud::FingerprintServiceResult(fleet.result);
    timings->fleet_shards = std::move(fleet.shards);
  }
  in.fleet_perf = std::move(fleet.result.chunk_perf);
  in.fleet_logs = std::move(fleet.result.logs);
  // Fig 13: one store flow per platform at the paper's median RTT so the
  // timeline comparison isolates the platform asymmetry.
  cloud::ServiceConfig service_cfg;
  service_cfg.seed = options.seed;
  const cloud::StorageService service(service_cfg);
  in.android_flow =
      service.SimulateFlow(DeviceType::kAndroid, Direction::kStore,
                           options.flow_file_size, options.seed,
                           paper::kMedianRtt);
  in.ios_flow =
      service.SimulateFlow(DeviceType::kIos, Direction::kStore,
                           options.flow_file_size, options.seed,
                           paper::kMedianRtt);
  if (timings) timings->fleet_s = Since(t0);
  return in;
}

ValidationRun RunValidation(const ValidateOptions& options) {
  const auto t_total = Clock::now();
  ValidationRun run;
  run.options = options;
  const ValidationInputs inputs = BuildValidationInputs(options, &run);
  const auto t0 = Clock::now();
  run.outcomes = EvaluateChecks(inputs);
  run.checks_s = Since(t0);
  run.total_s = Since(t_total);
  return run;
}

SeedSweep RunSeedSweep(const ValidateOptions& options, std::size_t seeds) {
  SeedSweep sweep;
  sweep.runs.reserve(seeds);
  std::map<std::string, std::size_t> failures;
  std::vector<double> pass_indicator;
  pass_indicator.reserve(seeds);
  for (std::size_t i = 0; i < seeds; ++i) {
    ValidateOptions o = options;
    o.seed = options.seed + i;
    ValidationRun run = RunValidation(o);
    pass_indicator.push_back(run.AllPassed() ? 1.0 : 0.0);
    for (const auto& c : run.outcomes)
      if (!c.passed) ++failures[c.id];
    sweep.runs.push_back(std::move(run));
  }
  sweep.run_pass_rate =
      std::count(pass_indicator.begin(), pass_indicator.end(), 1.0) /
      static_cast<double>(pass_indicator.size());
  const std::vector<BootstrapCi> ci = BootstrapPercentileCi(
      pass_indicator,
      [](std::span<const double> xs) {
        double sum = 0;
        for (const double x : xs) sum += x;
        return std::vector<double>{sum / static_cast<double>(xs.size())};
      },
      1000, 0.95, options.seed);
  sweep.pass_rate_ci = ci.front();
  for (const auto& [id, count] : failures)
    sweep.failures_by_check.emplace_back(id, count);
  return sweep;
}

std::uint64_t ManifestFingerprint(const ValidationRun& run) {
  // FNV-1a, byte-wise, matching the constants in cloud/fleet.cc. Everything
  // here is a pure function of (options minus threads, build); no wall
  // clocks, so --threads 1 and --threads N runs fingerprint identically.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  const auto mix_double = [&mix_u64](double d) {
    mix_u64(std::bit_cast<std::uint64_t>(d));
  };
  const auto mix_str = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xFF;  // length delimiter
    h *= 1099511628211ULL;
  };

  mix_u64(run.options.users);
  mix_u64(run.options.seed);
  mix_u64(run.options.fleet_flows);
  mix_u64(run.options.flow_file_size);
  mix_u64(run.options.fleet_shards);
  mix_u64(run.fleet_fingerprint);
  mix_u64(run.outcomes.size());
  for (const CheckOutcome& o : run.outcomes) {
    mix_str(o.id);
    mix_double(o.result.statistic);
    mix_double(o.result.threshold);
    mix_double(o.result.p_value);
    mix_u64(o.result.n);
    mix_u64(o.passed ? 1 : 0);
  }
  mix_u64(run.fleet_shards.size());
  for (const cloud::ShardTelemetry& t : run.fleet_shards) {
    mix_u64(t.shard);
    mix_u64(t.sessions);
    mix_u64(t.queue.scheduled);
    mix_u64(t.queue.executed);
    mix_u64(t.queue.cancelled);
    mix_u64(t.queue.peak_pending);
  }
  return h;
}

std::string ToJson(const ValidationRun& run) {
  std::string out;
  AppendRun(out, run);
  out += "\n";
  return out;
}

std::string ToJson(const SeedSweep& sweep) {
  std::string out;
  Append(out, "{\n  \"seeds\": %zu,\n  \"run_pass_rate\": %.4f,\n"
              "  \"pass_rate_ci95\": [%.4f, %.4f],\n"
              "  \"failures_by_check\": {",
         sweep.runs.size(), sweep.run_pass_rate, sweep.pass_rate_ci.lo,
         sweep.pass_rate_ci.hi);
  for (std::size_t i = 0; i < sweep.failures_by_check.size(); ++i) {
    const auto& [id, count] = sweep.failures_by_check[i];
    Append(out, "%s\"%s\": %zu", i ? ", " : "", id.c_str(), count);
  }
  out += "},\n  \"runs\": [\n";
  for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
    std::string run_json;
    AppendRun(run_json, sweep.runs[i]);
    // Indent the nested run objects two spaces for readability.
    out += "  ";
    for (const char c : run_json) {
      out += c;
      if (c == '\n') out += "  ";
    }
    out += i + 1 < sweep.runs.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string RenderText(const ValidationRun& run) {
  std::string out;
  Append(out, "=== paper-fidelity validation: %zu users, seed %llu ===\n",
         run.options.users,
         static_cast<unsigned long long>(run.options.seed));
  Append(out, "%-24s %-10s %-14s %12s %12s  %s\n", "check", "figure",
         "metric", "statistic", "threshold", "verdict");
  for (const auto& o : run.outcomes) {
    Append(out, "%-24s %-10s %-14s %12.5g %12.5g  %s\n", o.id.c_str(),
           o.figure.c_str(), o.result.metric.c_str(), o.result.statistic,
           o.result.threshold, o.passed ? "PASS" : "FAIL");
    if (!o.passed) Append(out, "    %s\n", o.result.detail.c_str());
  }
  Append(out, "--- %zu/%zu checks passed; generate %.1fs analyze %.1fs "
              "fleet %.1fs checks %.1fs (total %.1fs); sketches %.1f KiB\n",
         run.Passed(), run.outcomes.size(), run.generate_s, run.analyze_s,
         run.fleet_s, run.checks_s, run.total_s,
         static_cast<double>(run.sketch_bytes) / 1024.0);
  if (!run.fleet_shards.empty()) {
    std::uint64_t events = 0, cancelled = 0;
    for (const cloud::ShardTelemetry& t : run.fleet_shards) {
      events += t.queue.executed;
      cancelled += t.queue.cancelled;
    }
    Append(out, "--- fleet: %zu shards, %llu events executed "
                "(%llu cancelled); manifest fingerprint %016llx\n",
           run.fleet_shards.size(),
           static_cast<unsigned long long>(events),
           static_cast<unsigned long long>(cancelled),
           static_cast<unsigned long long>(ManifestFingerprint(run)));
  }
  return out;
}

}  // namespace mcloud::validate
