// The validation driver behind `mcloudctl validate`: generate a trace
// through the columnar path, run the fused analysis engine (the checks read
// its streaming sketches), execute the §4 fleet simulation, evaluate every
// FigureCheck, and
// emit a machine-readable pass/fail manifest. A seed-sweep mode re-runs the
// whole thing across seeds and bootstraps a pass-rate confidence interval,
// which is how the tolerance slacks in figure_checks.cc are calibrated to a
// false-positive rate (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/fleet.h"
#include "stats/bootstrap.h"
#include "util/units.h"
#include "validate/figure_checks.h"
#include "workload/model_params.h"

namespace mcloud::validate {

struct ValidateOptions {
  /// Sentinel for `pc_users`: derive the PC-only population as users/3.
  static constexpr std::size_t kPcUsersAuto = static_cast<std::size_t>(-1);

  std::size_t users = 20'000;       ///< mobile users
  /// PC-only users; kPcUsersAuto = users/3 (the legacy derivation). Not
  /// part of ManifestFingerprint: the scenario layer passes the spec's
  /// explicit population here, and a spec that declares the derived values
  /// (paper2016) must fingerprint identically to the default run.
  std::size_t pc_users = kPcUsersAuto;
  std::uint64_t seed = 42;
  /// Runtime generator model; the default reproduces the compile-time
  /// calibration byte for byte. Filled by `validate --spec`; excluded from
  /// ManifestFingerprint for the same reason as `pc_users`.
  workload::ModelParams model{};
  int threads = 0;                  ///< 0 = hardware concurrency
  /// §4 fleet: single-file sessions through the full service stack
  /// (the packet-trace stand-in, ~78% android as in the paper).
  std::size_t fleet_flows = 3'000;
  Bytes flow_file_size = 8 * kMiB;  ///< the Fig 13 single-flow transfers
  /// Shard count of the fleet simulation — the unit of determinism, fixed
  /// independently of `threads` (see cloud/fleet.h). Part of the sample
  /// identity: changing it reseeds the fleet.
  std::uint32_t fleet_shards = 8;
  /// Out-of-core mode: generate with bounded-memory spilling into a
  /// partitioned on-disk trace and analyze it via RunOutOfCore. Execution
  /// strategy, not sample identity — none of these three knobs enter
  /// ManifestFingerprint, and an out-of-core run fingerprints identically
  /// to the resident run it mirrors (the CI smoke job checks exactly that).
  bool out_of_core = false;
  /// Analyze-while-generate mode: generation spills sealed slices into the
  /// concurrent pipeline (AnalysisPipeline::RunConcurrent) instead of
  /// running generation and analysis as two phases. Like `out_of_core`,
  /// pure execution strategy — the manifest fingerprint is identical to the
  /// resident run's.
  bool concurrent = false;
  /// Approximate resident budget (MB) for out-of-core generation+analysis.
  std::size_t max_memory_mb = 2048;
  /// Spill directory for out-of-core mode; empty = a unique temp directory,
  /// removed when the run finishes.
  std::string spill_dir;
};

/// One full validation run: every check outcome plus phase wall times.
struct ValidationRun {
  ValidateOptions options;
  std::vector<CheckOutcome> outcomes;
  double generate_s = 0;  ///< workload generation (0 in concurrent mode —
                          ///< generation overlaps analysis there)
  double analyze_s = 0;   ///< fused analysis engine
  double fleet_s = 0;     ///< §4 service simulation + Fig 13 flows
  double checks_s = 0;    ///< all FigureCheck evaluations
  double total_s = 0;
  /// Resident bytes of the report's streaming sketches (ReportSketches) —
  /// the whole validation-input footprint beyond the fitted summaries.
  std::size_t sketch_bytes = 0;
  /// Per-shard event-core observability from the sharded fleet run.
  std::vector<cloud::ShardTelemetry> fleet_shards;
  /// FingerprintServiceResult of the merged fleet ServiceResult.
  std::uint64_t fleet_fingerprint = 0;

  [[nodiscard]] std::size_t Passed() const;
  [[nodiscard]] bool AllPassed() const {
    return Passed() == outcomes.size();
  }
};

/// Seed-sweep result: per-seed runs plus the bootstrapped pass-rate CI.
struct SeedSweep {
  std::vector<ValidationRun> runs;   ///< seeds seed, seed+1, ...
  double run_pass_rate = 0;          ///< fraction of runs with AllPassed()
  BootstrapCi pass_rate_ci;          ///< 95% bootstrap CI of run_pass_rate
  /// Total failures per check id across the sweep (empty when clean).
  std::vector<std::pair<std::string, std::size_t>> failures_by_check;
};

/// Generate the workload, run the analyses and the §4 fleet, and package
/// everything the checks read. Deterministic in (users, seed, fleet knobs);
/// thread count never changes the result.
[[nodiscard]] ValidationInputs BuildValidationInputs(
    const ValidateOptions& options, ValidationRun* timings = nullptr);

/// BuildValidationInputs + EvaluateChecks, with phase timings.
[[nodiscard]] ValidationRun RunValidation(const ValidateOptions& options);

/// Run `seeds` validations at seed, seed+1, ... and bootstrap the run-level
/// pass rate (the calibration target: >= 95% of seeds must pass).
[[nodiscard]] SeedSweep RunSeedSweep(const ValidateOptions& options,
                                     std::size_t seeds);

/// FNV-1a fingerprint of a run's deterministic content: the options that
/// define the sample (threads excluded — it never changes output), every
/// check verdict/statistic, the fleet fingerprint, and the per-shard event
/// counters. Wall-clock times are excluded, so two runs of the same build
/// at different `--threads` values produce the same fingerprint — the CI
/// fleet-determinism job compares exactly this value.
[[nodiscard]] std::uint64_t ManifestFingerprint(const ValidationRun& run);

/// Machine-readable manifests (stable field names; consumed by CI).
[[nodiscard]] std::string ToJson(const ValidationRun& run);
[[nodiscard]] std::string ToJson(const SeedSweep& sweep);

/// Aligned per-check text table for terminal output.
[[nodiscard]] std::string RenderText(const ValidationRun& run);

}  // namespace mcloud::validate
