// Sample-size-aware tolerance policies for the FigureCheck registry.
//
// Every check gates on an *effect size* (share deviation, KS distance,
// χ²/n) with a threshold of the form
//
//     threshold(n) = systematic_slack + sampling_band(n)
//
// The systematic slack absorbs documented, deliberate generator/paper
// deviations (see model/calibration notes); the sampling band shrinks with
// the sample so that a run with few users is not rejected for noise the
// paper's own 350k-user trace would average away. The z-scores/α below are
// calibrated to the whole registry: ~20 checks evaluated over 20-seed
// sweeps must jointly pass ≥95% of runs, so each individual gate runs at a
// per-check false-positive rate of roughly 0.1% (z≈3.3, α≈0.001).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace mcloud::validate {

/// Per-check false-positive rate the bands below are calibrated to.
inline constexpr double kPerCheckAlpha = 1e-3;
/// Two-sided normal quantile for kPerCheckAlpha (z such that
/// 2·(1-Φ(z)) = α).
inline constexpr double kPerCheckZ = 3.29;

// The session-split systematic slacks (the τ re-sessionization drift on the
// Fig 2 shares) used to live here as kSessionShareSlack /
// kSessionMixedShareSlack. They are a property of one particular *world*
// (the paper's session mix), not of the tolerance machinery, so they moved
// to the scenario layer: each WorkloadSpec declares its own
// `[targets] session_share_slack` / `mixed_share_slack`, with the old
// values as defaults (scenario/workload_spec.h), and the paper2016 spec
// pins them explicitly. The integration suite reads them from that spec.

/// Tolerance for a binomial share (e.g. "store-only sessions are 68.2%").
struct SharePolicy {
  /// Absolute slack for systematic model/paper mismatch.
  double systematic_slack = 0.0;
  /// z-score of the sampling term; kPerCheckZ unless a check documents why
  /// it deviates.
  double z = kPerCheckZ;

  /// Allowed |observed - expected| when the expected share is `p` and the
  /// share was estimated from `n` trials: slack + z·sqrt(p(1-p)/n).
  [[nodiscard]] double Band(double p, std::size_t n) const {
    if (n == 0) return 1.0;
    const double q = std::clamp(p, 0.01, 0.99);
    return systematic_slack +
           z * std::sqrt(q * (1.0 - q) / static_cast<double>(n));
  }
};

/// Allowed KS distance for a one-sample gate on `n` points: systematic
/// slack plus the Dvoretzky–Kiefer–Wolfowitz band sqrt(ln(2/α)/(2n)) —
/// the distance a perfectly calibrated sample exceeds with probability α.
[[nodiscard]] inline double KsBand(double systematic_slack, std::size_t n,
                                   double alpha = kPerCheckAlpha) {
  if (n == 0) return 1.0;
  return systematic_slack +
         std::sqrt(std::log(2.0 / alpha) / (2.0 * static_cast<double>(n)));
}

/// Allowed KS distance for a two-sample gate: DKW band at the effective
/// sample size n·m/(n+m).
[[nodiscard]] inline double KsBandTwoSample(double systematic_slack,
                                            std::size_t n, std::size_t m,
                                            double alpha = kPerCheckAlpha) {
  if (n == 0 || m == 0) return 1.0;
  const double ne = static_cast<double>(n) * static_cast<double>(m) /
                    static_cast<double>(n + m);
  return systematic_slack + std::sqrt(std::log(2.0 / alpha) / (2.0 * ne));
}

/// Allowed χ²/n for a categorical gate with `dof` degrees of freedom:
/// systematic slack plus the α-quantile of χ²_dof scaled by 1/n (χ²/n is
/// the per-sample effect size; under the null it concentrates at dof/n).
/// `chi_square_quantile` is stats::ChiSquareQuantile(alpha, dof) — passed
/// in as a value so this header stays dependency-free.
[[nodiscard]] inline double ChiSquarePerSampleBand(double systematic_slack,
                                                   double chi_square_quantile,
                                                   std::size_t n) {
  if (n == 0) return 1e9;
  return systematic_slack + chi_square_quantile / static_cast<double>(n);
}

}  // namespace mcloud::validate
