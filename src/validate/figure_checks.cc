#include "validate/figure_checks.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "analysis/burstiness.h"
#include "analysis/perf_analysis.h"
#include "model/paper_params.h"
#include "stats/chi_square.h"
#include "stats/tdigest.h"
#include "util/summary.h"
#include "validate/gof.h"
#include "validate/tolerance.h"

namespace mcloud::validate {
namespace {

// ---------------------------------------------------------------------------
// Systematic slacks, calibrated empirically (20k users, 20-seed sweep; see
// DESIGN.md §7). Each constant absorbs a *documented* model/paper offset so
// the sampling bands alone decide pass/fail around it.
// ---------------------------------------------------------------------------

/// Session-type χ²/n: the plans sample types from the paper split, but the
/// τ-based re-sessionization of the emitted logs merges/splits a few
/// percent (sweep-measured 0.709-0.722/0.260-0.272/0.019 at 20k users,
/// χ²/n ∈ [0.0036, 0.0075] over 20 seeds; a 50/50 mis-calibration ≈ 0.20).
constexpr double kSessionSplitChiSlack = 9e-3;
/// Fig 5 share deviations: session op counts emerge from activity budgets
/// split across sessions, not from a direct Fig 5 sample (measured
/// single-op share ~0.56 vs the paper's 0.40).
constexpr double kOpCountShareSlack = 0.18;
/// A²/n of the sketch-binned size samples against their own refit mixture.
constexpr double kRefitAdSlack = 0.02;
/// KS against the paper's Table 2 store mixture: the refit deliberately
/// splits the dominant 1.5 MB component and the occasional-user sub-1 MB
/// structure shifts the body (measured D ≈ 0.18, stable across scales).
constexpr double kStoreSizeKsSlack = 0.20;
constexpr double kRetrieveSizeKsSlack = 0.06;
/// Fig 7 middle-mass share: occasional users with two-sided traffic land in
/// the unsaturated middle alongside the mixed class.
constexpr double kRatioMiddleSlack = 0.08;
/// Measured one-device never-returned ~0.62 vs the paper's ~0.50: the
/// engagement model ties return behaviour to the engaged flag only.
constexpr double kEngagementSlack = 0.15;
/// Measured mobile-only never-retrieved ~0.95 vs the paper's ~0.80.
constexpr double kRetrievalReturnSlack = 0.18;
/// Fig 10: normalized deviation allowed on the refit SE parameters (c, a);
/// the retrieve refit wanders most (0.29 at 20k users, 0.45 at 4k).
constexpr double kActivityParamSlack = 0.45;
/// §4 medians: the TCP substrate is calibrated, not fitted, to the paper's
/// medians — allow a generous relative band.
constexpr double kChunkMedianSlack = 0.45;
constexpr double kRttMedianSlack = 0.30;
/// Fig 15: share of storage sending-window estimates allowed above the
/// 64 KB server advertisement (estimator noise on short chunks).
constexpr double kSwndOverShareSlack = 0.15;
constexpr double kRestartShareSlack = 0.15;
/// Table 3 χ²/n: sampled volumes push some upload/download-only users under
/// the 1 MB occasional bound (measured χ²/n 0.004-0.011 across scales).
constexpr double kUserTypeChiSlack = 8e-3;

std::string Fmt(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return std::string(buf);
}

double Median(std::span<const double> xs) {
  return xs.empty() ? 0.0 : Percentile(xs, 50.0);
}

/// (bin mean, bin count) pairs of a sketch's occupied bins — the inputs of
/// the grouped GoF statistics (see validate/gof.h).
struct SketchGroups {
  std::vector<double> values;
  std::vector<std::uint64_t> counts;
};

SketchGroups GroupsOf(const LogBins& sketch) {
  SketchGroups g;
  for (std::size_t b = 0; b < sketch.bins(); ++b) {
    if (sketch.Count(b) == 0) continue;
    g.values.push_back(sketch.Mean(b));
    g.counts.push_back(sketch.Count(b));
  }
  return g;
}

double ShareWhere(std::span<const double> xs, auto&& pred) {
  if (xs.empty()) return 0;
  std::size_t k = 0;
  for (const double x : xs)
    if (pred(x)) ++k;
  return static_cast<double>(k) / static_cast<double>(xs.size());
}

/// Structural-gate helper: collects named violations; statistic = count,
/// threshold = 0.
class Violations {
 public:
  void Check(bool ok, const std::string& claim) {
    if (!ok) {
      if (!detail_.empty()) detail_ += "; ";
      detail_ += claim;
      ++count_;
    }
  }
  [[nodiscard]] CheckResult Result(std::size_t n) const {
    CheckResult r;
    r.metric = "violations";
    r.statistic = static_cast<double>(count_);
    r.threshold = 0;
    r.n = n;
    r.detail = count_ == 0 ? "all orderings hold" : detail_;
    return r;
  }

 private:
  std::size_t count_ = 0;
  std::string detail_;
};

const analysis::EngagementCurve* FindEngagement(
    std::span<const analysis::EngagementCurve> curves,
    analysis::EngagementGroup g) {
  for (const auto& c : curves)
    if (c.group == g) return &c;
  return nullptr;
}

const analysis::RetrievalReturnCurve* FindRetrieval(
    std::span<const analysis::RetrievalReturnCurve> curves,
    analysis::EngagementGroup g) {
  for (const auto& c : curves)
    if (c.group == g) return &c;
  return nullptr;
}

/// The paper's published shares carry rounding error (Table 3's column sums
/// to 0.999); renormalize before handing them to the strict chi-square.
template <std::size_t N>
std::array<double, N> Normalized(const std::array<double, N>& probs) {
  double total = 0;
  for (const double p : probs) total += p;
  std::array<double, N> out{};
  for (std::size_t i = 0; i < N; ++i) out[i] = probs[i] / total;
  return out;
}

CheckResult NoSample(const char* what) {
  CheckResult r;
  r.metric = "violations";
  r.statistic = 1;
  r.threshold = 0;
  r.detail = Fmt("no samples for %s", what);
  return r;
}

// ---------------------------------------------------------------------------
// §2 checks
// ---------------------------------------------------------------------------

CheckResult CheckFig01(const ValidationInputs& in) {
  const auto& ts = in.report.timeseries;
  Violations v;
  const int peak = ts.PeakHourOfDay();
  v.Check(peak >= 19 && peak <= 23,
          Fmt("peak hour-of-day %d outside the evening surge [19,23]", peak));
  v.Check(ts.TotalRetrieveGb() > ts.TotalStoreGb(),
          Fmt("retrieval volume %.1f GB not above storage volume %.1f GB",
              ts.TotalRetrieveGb(), ts.TotalStoreGb()));
  const double file_ratio =
      ts.TotalRetrievedFiles() > 0
          ? static_cast<double>(ts.TotalStoredFiles()) /
                static_cast<double>(ts.TotalRetrievedFiles())
          : 0.0;
  v.Check(file_ratio >= 1.5,
          Fmt("stored/retrieved file ratio %.2f below 1.5 (paper ~2)",
              file_ratio));
  return v.Result(ts.hours.size());
}

// ---------------------------------------------------------------------------
// §3.1 checks
// ---------------------------------------------------------------------------

CheckResult CheckFig02(const ValidationInputs& in) {
  const auto& s = in.report.session_split;
  const std::array<std::uint64_t, 3> observed = {
      s.store_only, s.retrieve_only, s.mixed};
  const std::array<double, 3> expected = Normalized<3>(
      {paper::kStoreOnlySessionShare, paper::kRetrieveOnlySessionShare,
       paper::kMixedSessionShare});
  const ChiSquareResult chi = ChiSquareCounts(observed, expected);
  CheckResult r;
  r.metric = "chi2/n";
  r.n = s.total;
  r.statistic = s.total ? chi.statistic / static_cast<double>(s.total) : 1e9;
  r.threshold = ChiSquarePerSampleBand(
      kSessionSplitChiSlack, ChiSquareQuantile(kPerCheckAlpha, 2),
      s.total);
  r.p_value = chi.p_value;
  r.detail = Fmt("store/retrieve/mixed = %.3f/%.3f/%.3f vs paper "
                 "0.682/0.299/0.019",
                 s.StoreShare(), s.RetrieveShare(), s.MixedShare());
  return r;
}

CheckResult CheckFig03(const ValidationInputs& in) {
  const auto& im = in.report.interval_model;
  Violations v;
  v.Check(im.valley_tau >= 10 * kMinute && im.valley_tau <= 3 * kHour,
          Fmt("valley tau %.0f min outside [10 min, 3 h] around the paper's "
              "1 h", im.valley_tau / kMinute));
  // Documented deviation: the generated intra-session gaps average ~1-2 s
  // (burst-at-start emission) vs the paper's ~10 s mode; the gate only
  // requires the intra mode to stay far below the valley.
  v.Check(im.intra_mean_seconds > 0 && im.intra_mean_seconds < 100,
          Fmt("intra-session gap mean %.1f s outside (0, 100 s)",
              im.intra_mean_seconds));
  v.Check(im.inter_mean_seconds >= 0.25 * kDay &&
              im.inter_mean_seconds <= 4 * kDay,
          Fmt("inter-session gap mean %.2f d outside [0.25 d, 4 d] around "
              "the paper's ~1 d", im.inter_mean_seconds / kDay));
  return v.Result(static_cast<std::size_t>(in.report.sketches.intervals.Total()));
}

CheckResult CheckFig04(const ValidationInputs& in) {
  const analysis::BurstinessGroup* multi = nullptr;
  const analysis::BurstinessGroup* over20 = nullptr;
  for (const auto& g : in.report.burstiness) {
    if (g.min_ops_exclusive == 1) multi = &g;
    if (g.min_ops_exclusive == 20) over20 = &g;
  }
  if (!multi || multi->normalized_times.empty())
    return NoSample("multi-op sessions");
  const double frac =
      analysis::FractionBelow(*multi, paper::kBurstyOperatingTimeBound);
  CheckResult r;
  r.metric = "share shortfall";
  r.n = multi->normalized_times.size();
  r.statistic = std::max(0.0, paper::kBurstyOperatingTimeQuantile - frac);
  // Sessions with > 20 ops must stay at least as bursty as the headline
  // bound (measured ~0.83; the paper reports near 1.0) — a drop below 0.75
  // is a structural regression, not noise.
  if (over20 && !over20->normalized_times.empty() &&
      analysis::FractionBelow(*over20, paper::kBurstyOperatingTimeBound) <
          0.75)
    r.statistic += 1.0;
  // Measured shortfall ~0.035: the generator clusters ops at the session
  // start but its tail of slow two-op sessions is slightly heavier than
  // the paper's.
  r.threshold = SharePolicy{0.05}.Band(paper::kBurstyOperatingTimeQuantile,
                                       r.n);
  r.detail = Fmt("%.1f%% of >1-op sessions below 0.1 normalized operating "
                 "time (paper >80%%)", 100 * frac);
  return r;
}

CheckResult CheckFig05(const ValidationInputs& in) {
  const std::size_t n = in.report.session_split.total;
  if (n == 0) return NoSample("mobile sessions");
  const auto& sk = in.report.sketches;
  const double p1 =
      static_cast<double>(sk.single_op_sessions) / static_cast<double>(n);
  const double p20 =
      static_cast<double>(sk.over20_op_sessions) / static_cast<double>(n);
  CheckResult r;
  r.metric = "share dev";
  r.n = n;
  r.statistic = std::max(std::abs(p1 - paper::kSingleOpSessionShare),
                         std::abs(p20 - paper::kOver20OpSessionShare));
  r.threshold =
      kOpCountShareSlack +
      std::max(SharePolicy{0}.Band(paper::kSingleOpSessionShare, r.n),
               SharePolicy{0}.Band(paper::kOver20OpSessionShare, r.n));
  r.detail = Fmt("single-op share %.3f (paper 0.40), >20-op share %.3f "
                 "(paper 0.10)", p1, p20);
  return r;
}

CheckResult CheckFig06(const ValidationInputs& in) {
  const auto& sk = in.report.sketches;
  if (sk.store_avg_mb.Total() == 0 || sk.retrieve_avg_mb.Total() == 0)
    return NoSample("size samples");
  const auto& store_fit = in.report.store_size_model.selection.fit.mixture;
  const auto& ret_fit = in.report.retrieve_size_model.selection.fit.mixture;
  const SketchGroups gs = GroupsOf(sk.store_avg_mb);
  const SketchGroups gr = GroupsOf(sk.retrieve_avg_mb);
  const GofResult ad_s = AndersonDarlingGrouped(
      gs.values, gs.counts, [&](double x) { return store_fit.Cdf(x); });
  const GofResult ad_r = AndersonDarlingGrouped(
      gr.values, gr.counts, [&](double x) { return ret_fit.Cdf(x); });
  CheckResult r;
  r.metric = "AD A2/n";
  r.n = std::min(ad_s.n, ad_r.n);
  r.statistic =
      std::max(ad_s.statistic / static_cast<double>(ad_s.n),
               ad_r.statistic / static_cast<double>(ad_r.n));
  // Under a faithful fit A² stays O(1); 6.0 ≈ the case-0 critical value at
  // α ≈ 1e-3. The slack absorbs the residual mismatch a finite mixture
  // keeps against its own sample.
  r.threshold = kRefitAdSlack + 6.0 / static_cast<double>(r.n);
  r.p_value = std::min(ad_s.p_value, ad_r.p_value);
  r.detail = Fmt("A2/n store %.4f (n=%zu), retrieve %.4f (n=%zu) vs refit "
                 "mixtures", ad_s.statistic / static_cast<double>(ad_s.n),
                 ad_s.n, ad_r.statistic / static_cast<double>(ad_r.n),
                 ad_r.n);
  return r;
}

CheckResult CheckTab02Store(const ValidationInputs& in) {
  const auto& sketch = in.report.sketches.store_avg_mb;
  if (sketch.Total() == 0) return NoSample("store-only sessions");
  const MixtureExponential model = paper::StoreFileSizeModel();
  const SketchGroups g = GroupsOf(sketch);
  const GofResult ks =
      KsGrouped(g.values, g.counts, [&](double x) { return model.Cdf(x); });
  CheckResult r;
  r.metric = "KS D";
  r.n = ks.n;
  r.statistic = ks.statistic;
  r.threshold = KsBand(kStoreSizeKsSlack, ks.n);
  r.p_value = ks.p_value;
  r.detail = Fmt("D=%.4f vs paper store mixture (0.91/1.5, 0.07/13.1, "
                 "0.02/77.4 MB)", ks.statistic);
  return r;
}

CheckResult CheckTab02Retrieve(const ValidationInputs& in) {
  const auto& sketch = in.report.sketches.retrieve_avg_mb;
  if (sketch.Total() == 0) return NoSample("retrieve-only sessions");
  const MixtureExponential model = paper::RetrieveFileSizeModel();
  const SketchGroups g = GroupsOf(sketch);
  const GofResult ks =
      KsGrouped(g.values, g.counts, [&](double x) { return model.Cdf(x); });
  CheckResult r;
  r.metric = "KS D";
  r.n = ks.n;
  r.statistic = ks.statistic;
  r.threshold = KsBand(kRetrieveSizeKsSlack, ks.n);
  r.p_value = ks.p_value;
  r.detail = Fmt("D=%.4f vs paper retrieve mixture (0.46/1.6, 0.26/29.8, "
                 "0.28/146.8 MB)", ks.statistic);
  return r;
}

// ---------------------------------------------------------------------------
// §3.2 checks
// ---------------------------------------------------------------------------

CheckResult CheckFig07(const ValidationInputs& in) {
  const auto& sk = in.report.sketches;
  if (sk.ratio_sample_users == 0)
    return NoSample("mobile-only ratio samples");
  // Fig 7a's signature shape: the CDF jumps at the saturated extremes and
  // only the mixed class (plus two-sided occasional users, absorbed in the
  // slack) occupies the middle. The pipeline counts the |log10 ratio| < 5
  // middle band exactly (ReportSketches).
  const double middle = static_cast<double>(sk.ratio_middle_users) /
                        static_cast<double>(sk.ratio_sample_users);
  CheckResult r;
  r.metric = "share dev";
  r.n = static_cast<std::size_t>(sk.ratio_sample_users);
  r.statistic = std::abs(middle - paper::kMobileMixedShare);
  r.threshold = kRatioMiddleSlack +
                SharePolicy{0}.Band(paper::kMobileMixedShare, r.n);
  r.detail = Fmt("unsaturated |log10 ratio|<5 share %.3f vs paper mixed "
                 "class 0.072", middle);
  return r;
}

CheckResult CheckFig08(const ValidationInputs& in) {
  const auto* one = FindEngagement(in.report.engagement,
                                   analysis::EngagementGroup::kOneDevice);
  const auto* multi = FindEngagement(in.report.engagement,
                                     analysis::EngagementGroup::kMultiDevice);
  if (!one || !multi || one->day1_users == 0 || multi->day1_users == 0)
    return NoSample("engagement groups");
  CheckResult r;
  r.metric = "share dev";
  r.n = one->day1_users;
  const double dev_one =
      std::abs(one->never_returned - paper::kSingleDeviceNoReturnShare);
  const double over_multi = std::max(
      0.0, multi->never_returned - paper::kMultiDeviceNoReturnShare);
  r.statistic = std::max(dev_one, over_multi);
  r.threshold = kEngagementSlack +
                SharePolicy{0}.Band(paper::kSingleDeviceNoReturnShare, r.n);
  r.detail = Fmt("never-returned: 1-device %.3f (paper ~0.50), multi-device "
                 "%.3f (paper <0.20)", one->never_returned,
                 multi->never_returned);
  return r;
}

CheckResult CheckFig09(const ValidationInputs& in) {
  const auto* one = FindRetrieval(in.report.retrieval_returns,
                                  analysis::EngagementGroup::kOneDevice);
  const auto* mpc = FindRetrieval(in.report.retrieval_returns,
                                  analysis::EngagementGroup::kMobileAndPc);
  if (!one || !mpc || one->day1_uploaders == 0 || mpc->day1_uploaders == 0)
    return NoSample("retrieval-return groups");
  CheckResult r;
  r.metric = "share dev";
  r.n = one->day1_uploaders;
  r.statistic =
      std::abs(one->never_retrieved - paper::kMobileOnlyNoRetrievalShare);
  // Mobile&PC users retrieve across devices; their no-retrieval share must
  // stay below the mobile-only share or the Fig 9 ordering is broken.
  if (mpc->never_retrieved >= one->never_retrieved) r.statistic += 1.0;
  r.threshold = kRetrievalReturnSlack +
                SharePolicy{0}.Band(paper::kMobileOnlyNoRetrievalShare, r.n);
  r.detail = Fmt("never-retrieved: mobile-only %.3f (paper ~0.80), "
                 "mobile&PC %.3f", one->never_retrieved,
                 mpc->never_retrieved);
  return r;
}

CheckResult CheckActivity(const analysis::ActivityModelResult& fit,
                          const paper::SeParams& ref) {
  CheckResult r;
  r.metric = "param dev";
  r.n = fit.active_users;
  const double dev_c = std::abs(fit.se.c - ref.c) / ref.c;
  const double dev_a = std::abs(fit.se.a - ref.a) / ref.a;
  r.statistic = std::max(dev_c, dev_a);
  // The paper's central §3.2.3 claim: SE fits the rank curve, power law
  // does not. Breaking either ordering is a hard failure.
  if (fit.se.r_squared < 0.95) r.statistic += 1.0;
  if (fit.se.r_squared < fit.power_law.r_squared) r.statistic += 1.0;
  r.threshold = kActivityParamSlack;
  r.detail = Fmt("SE c=%.3f a=%.3f R2=%.4f (paper c=%.2f a=%.3f), "
                 "power-law R2=%.4f", fit.se.c, fit.se.a, fit.se.r_squared,
                 ref.c, ref.a, fit.power_law.r_squared);
  return r;
}

CheckResult CheckFig10Store(const ValidationInputs& in) {
  return CheckActivity(in.report.store_activity, paper::kStoreActivitySe);
}

CheckResult CheckFig10Retrieve(const ValidationInputs& in) {
  return CheckActivity(in.report.retrieve_activity,
                       paper::kRetrieveActivitySe);
}

CheckResult CheckTab03(const ValidationInputs& in) {
  const auto& col = in.report.mobile_only_column;
  if (col.users == 0) return NoSample("mobile-only users");
  std::array<std::uint64_t, 4> observed{};
  for (std::size_t i = 0; i < 4; ++i) {
    observed[i] = static_cast<std::uint64_t>(
        std::llround(col.user_share[i] * static_cast<double>(col.users)));
  }
  const std::array<double, 4> expected = Normalized<4>(
      {paper::kMobileOccasionalShare, paper::kMobileUploadOnlyShare,
       paper::kMobileDownloadOnlyShare, paper::kMobileMixedShare});
  const ChiSquareResult chi = ChiSquareCounts(observed, expected);
  CheckResult r;
  r.metric = "chi2/n";
  r.n = col.users;
  r.statistic = chi.statistic / static_cast<double>(col.users);
  r.threshold = ChiSquarePerSampleBand(
      kUserTypeChiSlack, ChiSquareQuantile(kPerCheckAlpha, 3),
      col.users);
  r.p_value = chi.p_value;
  r.detail = Fmt("occ/up/down/mixed = %.3f/%.3f/%.3f/%.3f vs paper "
                 "0.239/0.515/0.173/0.072", col.user_share[0],
                 col.user_share[1], col.user_share[2], col.user_share[3]);
  return r;
}

// ---------------------------------------------------------------------------
// §4 checks (fleet simulation + single-flow traces)
// ---------------------------------------------------------------------------

CheckResult CheckFig12(const ValidationInputs& in) {
  const std::vector<double> android = analysis::PerfTransferTimes(
      in.fleet_perf, DeviceType::kAndroid, Direction::kStore);
  const std::vector<double> ios = analysis::PerfTransferTimes(
      in.fleet_perf, DeviceType::kIos, Direction::kStore);
  if (android.empty() || ios.empty()) return NoSample("upload chunks");
  const double med_a = Median(android);
  const double med_i = Median(ios);
  CheckResult r;
  r.metric = "median rel dev";
  r.n = android.size() + ios.size();
  r.statistic =
      std::max(std::abs(med_a - paper::kMedianUploadTimeAndroid) /
                   paper::kMedianUploadTimeAndroid,
               std::abs(med_i - paper::kMedianUploadTimeIos) /
                   paper::kMedianUploadTimeIos);
  if (med_a <= med_i) r.statistic += 1.0;  // the Fig 12 asymmetry itself
  r.threshold = kChunkMedianSlack;
  r.detail = Fmt("median chunk time android %.2f s (paper 4.1), ios %.2f s "
                 "(paper 1.6)", med_a, med_i);
  return r;
}

CheckResult CheckFig13(const ValidationInputs& in) {
  Violations v;
  v.Check(!in.android_flow.aborted && !in.ios_flow.aborted,
          "a Fig 13 flow aborted");
  v.Check(!in.android_flow.chunks.empty() && !in.ios_flow.chunks.empty(),
          "a Fig 13 flow produced no chunks");
  v.Check(in.android_flow.restarts > 0,
          "android flow never restarted slow start (paper: idle > RTO "
          "between most chunks)");
  v.Check(in.android_flow.duration > in.ios_flow.duration,
          Fmt("android flow (%.1f s) not slower than ios (%.1f s)",
              in.android_flow.duration, in.ios_flow.duration));
  v.Check(!in.android_flow.trace.empty() && !in.ios_flow.trace.empty(),
          "packet traces missing");
  return v.Result(in.android_flow.chunks.size() + in.ios_flow.chunks.size());
}

CheckResult CheckFig14(const ValidationInputs& in) {
  const std::vector<double> rtts = analysis::RttSamples(in.fleet_logs);
  if (rtts.empty()) return NoSample("chunk RTTs");
  const double med = Median(rtts);
  CheckResult r;
  r.metric = "median rel dev";
  r.n = rtts.size();
  r.statistic = std::abs(med - paper::kMedianRtt) / paper::kMedianRtt;
  r.threshold = kRttMedianSlack;
  r.detail = Fmt("median RTT %.3f s (paper 0.100 s)", med);
  return r;
}

CheckResult CheckFig15(const ValidationInputs& in) {
  const std::vector<double> swnd =
      analysis::SendingWindowEstimates(in.fleet_logs);
  if (swnd.empty()) return NoSample("sending-window estimates");
  const double cap =
      1.25 * static_cast<double>(paper::kServerReceiveWindow);
  const double over = ShareWhere(swnd, [&](double x) { return x > cap; });
  CheckResult r;
  r.metric = "share over cap";
  r.n = swnd.size();
  r.statistic = over;
  r.threshold = kSwndOverShareSlack + SharePolicy{0}.Band(0.05, r.n);
  r.detail = Fmt("%.1f%% of storage swnd estimates above 1.25x the 64 KB "
                 "server window (median %.0f B)", 100 * over, Median(swnd));
  return r;
}

CheckResult CheckFig16(const ValidationInputs& in) {
  const double ssr_a = analysis::SlowStartRestartShare(
      in.fleet_perf, DeviceType::kAndroid, Direction::kStore);
  const double ssr_i = analysis::SlowStartRestartShare(
      in.fleet_perf, DeviceType::kIos, Direction::kStore);
  const std::vector<double> tsrv_a = analysis::TsrvSamples(
      in.fleet_perf, DeviceType::kAndroid, Direction::kStore);
  const std::vector<double> tsrv_i = analysis::TsrvSamples(
      in.fleet_perf, DeviceType::kIos, Direction::kStore);
  if (tsrv_a.empty() || tsrv_i.empty()) return NoSample("T_srv samples");
  const std::size_t gaps_a =
      analysis::IdleToRtoRatios(in.fleet_perf, DeviceType::kAndroid,
                                Direction::kStore).size();
  CheckResult r;
  r.metric = "share dev";
  r.n = gaps_a;
  r.statistic =
      std::max(std::abs(ssr_a - paper::kAndroidIdleOverRtoShare),
               std::abs(ssr_i - paper::kIosIdleOverRtoShare));
  // T_srv is a server property: device-blind medians near the paper's
  // ~100 ms, or the dissection is broken regardless of the idle shares.
  const double med_a = Median(tsrv_a);
  const double med_i = Median(tsrv_i);
  if (std::abs(med_a - med_i) > 0.05) r.statistic += 1.0;
  if (med_a < 0.05 || med_a > 0.2) r.statistic += 1.0;
  r.threshold = kRestartShareSlack +
                SharePolicy{0}.Band(paper::kAndroidIdleOverRtoShare, gaps_a);
  r.detail = Fmt("idle>RTO share android %.3f (paper 0.60), ios %.3f "
                 "(paper 0.18); median T_srv %.3f/%.3f s", ssr_a, ssr_i,
                 med_a, med_i);
  return r;
}

CheckResult CheckTab04(const ValidationInputs& in) {
  const auto& ts = in.report.timeseries;
  Violations v;
  // Write-dominated workload — judged on file counts, NOT on the session
  // split, so the fig02 negative control stays isolated to fig02.
  const double file_ratio =
      ts.TotalRetrievedFiles() > 0
          ? static_cast<double>(ts.TotalStoredFiles()) /
                static_cast<double>(ts.TotalRetrievedFiles())
          : 0.0;
  v.Check(file_ratio >= 1.5,
          Fmt("not write-dominated: stored/retrieved files %.2f < 1.5",
              file_ratio));
  v.Check(ts.TotalRetrieveGb() > ts.TotalStoreGb(),
          "retrieved objects not larger in aggregate volume");
  // Defer-uploads-off-peak only pays if the diurnal surge exists.
  double total = 0;
  std::array<double, 24> by_hour{};
  for (const auto& h : ts.hours) {
    const double vol = h.StoreVolumeGb() + h.RetrieveVolumeGb();
    by_hour[static_cast<std::size_t>(h.hour % 24)] += vol;
    total += vol;
  }
  const double mean_hour = total / 24.0;
  const double peak_hour =
      *std::max_element(by_hour.begin(), by_hour.end());
  v.Check(mean_hour > 0 && peak_hour >= 1.3 * mean_hour,
          Fmt("peak hour volume %.1fx mean, diurnal surge missing",
              mean_hour > 0 ? peak_hour / mean_hour : 0.0));
  // Devices are 78.4% android but per-user activity skews accesses
  // (measured share 0.67-0.74 across scales); the gate only pins the fleet
  // as clearly android-majority near the paper's figure.
  v.Check(std::abs(in.report.android_access_share - paper::kAndroidShare) <=
              0.13,
          Fmt("android access share %.3f off paper 0.784",
              in.report.android_access_share));
  return v.Result(ts.hours.size());
}

}  // namespace

const std::vector<FigureCheck>& FigureChecks() {
  static const std::vector<FigureCheck> checks = {
      {"fig01_workload", "Fig 1",
       "Diurnal workload: evening surge, retrieval volume above storage, "
       "stored files ~2x retrieved",
       CheckFig01},
      {"fig02_session_split", "Fig 2/§3.1.1",
       "Session type split matches 68.2/29.9/1.9 (chi-square)", CheckFig02},
      {"fig03_intervals", "Fig 3",
       "Inter-op interval structure: ~1 h valley, intra/inter modes",
       CheckFig03},
      {"fig04_burstiness", "Fig 4",
       ">80% of multi-op sessions act within 10% of the session length",
       CheckFig04},
      {"fig05_session_size", "Fig 5",
       "40% single-op sessions, ~10% with more than 20 ops", CheckFig05},
      {"fig06_filesize_fit", "Fig 6",
       "Refit size mixtures describe their own raw samples "
       "(Anderson-Darling)", CheckFig06},
      {"tab02_store_sizes", "Table 2",
       "Store-only avg file sizes match the paper's mixture (KS)",
       CheckTab02Store},
      {"tab02_retrieve_sizes", "Table 2",
       "Retrieve-only avg file sizes match the paper's mixture (KS)",
       CheckTab02Retrieve},
      {"fig07_usage_ratio", "Fig 7",
       "Volume-ratio CDF concentrates at the saturated extremes",
       CheckFig07},
      {"fig08_engagement", "Fig 8",
       "~50% of 1-device users never return; multi-device under 20%",
       CheckFig08},
      {"fig09_retrieval_return", "Fig 9",
       "~80% of mobile-only uploaders never retrieve within the week",
       CheckFig09},
      {"fig10_store_activity", "Fig 10a",
       "Stored-file ranks follow the paper's stretched exponential",
       CheckFig10Store},
      {"fig10_retrieve_activity", "Fig 10b",
       "Retrieved-file ranks follow the paper's stretched exponential",
       CheckFig10Retrieve},
      {"fig12_chunk_time", "Fig 12",
       "Median chunk upload time ~4.1 s android vs ~1.6 s ios", CheckFig12},
      {"fig13_flow_timeline", "Fig 13",
       "Single-flow timelines: android idles past RTO and finishes slower",
       CheckFig13},
      {"fig14_rtt", "Fig 14", "Median chunk RTT ~100 ms", CheckFig14},
      {"fig15_swnd", "Fig 15",
       "Storage sending windows capped by the 64 KB server advertisement",
       CheckFig15},
      {"fig16_idle_dissection", "Fig 16",
       "Idle>RTO shares ~60%/18% android/ios; T_srv device-blind ~100 ms",
       CheckFig16},
      {"tab03_user_types", "Table 3",
       "Mobile-only user classes match 23.9/51.5/17.3/7.2 (chi-square)",
       CheckTab03},
      {"tab04_summary", "Table 4",
       "Summary implications: write-dominated, large retrievals, diurnal "
       "surge, android-heavy fleet", CheckTab04},
  };
  return checks;
}

std::vector<CheckOutcome> EvaluateChecks(const ValidationInputs& inputs) {
  using Clock = std::chrono::steady_clock;
  std::vector<CheckOutcome> out;
  out.reserve(FigureChecks().size());
  for (const FigureCheck& check : FigureChecks()) {
    const auto t0 = Clock::now();
    CheckOutcome o;
    o.id = check.id;
    o.figure = check.figure;
    o.what = check.what;
    o.result = check.run(inputs);
    o.passed = o.result.statistic <= o.result.threshold;
    o.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    out.push_back(std::move(o));
  }
  return out;
}

}  // namespace mcloud::validate
